"""Transparent Huge Page (THP) policy.

The paper evaluates every configuration with and without THP for
application data.  Real THP behaviour is workload dependent: GUPS and
SysBench get almost full 2MB coverage, while the graph workloads' sparse
irregular heaps stay mostly on 4KB pages ("even with THP, some
applications do not use huge pages", Section VII-E2).

We model this with a *coverage* knob: each 2MB-aligned virtual region is
deterministically huge-page-backed with probability ``coverage`` (hashed
on the region number, so the decision is stable across configurations
and runs).  A fault inside a backed region maps the whole 2MB page.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.hashing.hashes import mix64

#: 4KB pages per 2MB region.
PAGES_PER_2M = 512

#: ``log2(PAGES_PER_2M)`` — ``region_base(vpn) == (vpn >> REGION_SHIFT)
#: << REGION_SHIFT`` for non-negative VPNs.  Shared by the scalar fill
#: path and the vectorized engines so both compute region bases the same
#: way.
REGION_SHIFT = PAGES_PER_2M.bit_length() - 1


class ThpPolicy:
    """Decides the backing page size for a faulting virtual page."""

    def __init__(self, enabled: bool = False, coverage: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ConfigurationError(f"THP coverage {coverage} out of [0,1]")
        self.enabled = enabled
        self.coverage = coverage
        self.seed = seed

    def page_size_for(self, vpn: int) -> str:
        """``"2M"`` when the 2MB region containing ``vpn`` is THP-backed."""
        if not self.enabled or self.coverage <= 0.0:
            return "4K"
        region = vpn // PAGES_PER_2M
        # Deterministic per-region coin weighted by coverage.
        draw = (mix64(region, self.seed) >> 11) / float(1 << 53)
        return "2M" if draw < self.coverage else "4K"

    def region_base(self, vpn: int) -> int:
        """The first 4KB VPN of ``vpn``'s 2MB region."""
        return (vpn >> REGION_SHIFT) << REGION_SHIFT
