"""Process model: a schedulable entity owning page tables and a trace.

Per-process HPTs are the paper's setting (a global HPT cannot support
sharing/page sizes or cheap teardown — Section II-B), so a process here
bundles its own page tables, address space, and workload stream, plus
the process-lifetime operations the multi-process simulator needs.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.kernel.address_space import AddressSpace
from repro.kernel.thp import REGION_SHIFT


class Process:
    """One runnable process with its own translation machinery.

    ``trace`` is the process's (possibly very long) virtual-page access
    stream; the scheduler consumes it in quanta.  ``l2p`` is set for
    ME-HPT processes and None otherwise — the context-switch model uses
    it to price the L2P save/restore.
    """

    def __init__(
        self,
        name: str,
        address_space: AddressSpace,
        tlb,
        trace: np.ndarray,
        l2p=None,
    ) -> None:
        self.name = name
        self.address_space = address_space
        self.tlb = tlb
        self.trace = trace
        self.l2p = l2p
        self.cursor = 0
        self.cycles = 0.0
        self.accesses_done = 0
        self.finished = False

    def remaining(self) -> int:
        return len(self.trace) - self.cursor

    def run_quantum(self, quantum: int) -> float:
        """Execute up to ``quantum`` accesses; returns the cycles spent."""
        end = min(self.cursor + quantum, len(self.trace))
        cycles = 0.0
        translate = self.tlb.translate
        fault = self.address_space.handle_fault
        fill = self.tlb.fill
        # One bulk numpy->int conversion per quantum instead of one
        # int() call per access; the loop then runs on plain ints.
        for vpn in self.trace[self.cursor:end].tolist():
            outcome = translate(vpn)
            cycles += outcome.cycles
            if outcome.level == "fault":
                result = fault(vpn)
                fill(
                    (vpn >> REGION_SHIFT) << REGION_SHIFT
                    if result.page_size == "2M"
                    else vpn,
                    result.page_size,
                )
        self.accesses_done += end - self.cursor
        self.cursor = end
        self.cycles += cycles
        if self.cursor >= len(self.trace):
            self.finished = True
        return cycles

    def teardown_entries(self) -> int:
        """Entries to delete at process death.

        For per-process HPTs this is a table drop (free the chunks); the
        global-HPT alternative would need a linear scan of everything —
        the Section II-B argument for per-process tables.
        """
        tables = getattr(self.address_space.page_tables, "tables", None)
        if tables is None:
            return 0
        return sum(len(t.table) for t in tables.values())
