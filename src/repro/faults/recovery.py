"""Cycle-accounted recovery policies for transient failures.

The kernel's response to a failed allocation is not free: it backs off,
kicks compaction/reclaim, and retries.  :class:`RecoveryPolicy` models
that as a bounded retry loop with geometrically growing backoff cycles;
the allocators charge the backoff to their cycle statistics and record a
``retry`` event per attempt, so recovering from injected faults shows up
in every experiment's allocation-cycle totals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Retry-with-backoff parameters for transient allocation failures.

    ``backoff_cycles(attempt)`` grows geometrically: the first retry
    models a direct re-scan of the free lists, later ones the cost of
    waking compaction (the paper's Section III measurements show the
    search cost dominating at high FMFI, so the base is set to the order
    of a mid-size allocation's search cost).
    """

    max_retries: int = 3
    backoff_base_cycles: float = 20_000.0
    backoff_factor: float = 4.0

    def backoff_cycles(self, attempt: int) -> float:
        """Cycles charged before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt {attempt} must be >= 1")
        return self.backoff_base_cycles * self.backoff_factor ** (attempt - 1)


#: Shared default: used whenever a fault plan is armed without an
#: explicit policy.
DEFAULT_RECOVERY = RecoveryPolicy()
