"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers consulted
at named *sites* threaded through the allocator, the resize engines and
the L2P budget.  Decisions are functions of (spec, per-spec opportunity
counter, per-spec forked RNG), so the same seed and the same sequence of
site consultations produce the same faults — and therefore the same
degradation-event log — on every run.  :meth:`FaultPlan.replicate`
returns a fresh plan with zeroed counters for re-running a sweep
deterministically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.faults.log import EVENT_FAULT, DegradationLog
from repro.hashing.storage import ChunkBudget

#: Injection sites.
SITE_CONTIGUOUS_ALLOC = "contiguous_alloc"  # permanent contiguous-allocation failure
SITE_CHUNK_ALLOC = "chunk_alloc"            # transient (retryable) allocation failure
SITE_CUCKOO_KICKS = "cuckoo_kicks"          # insertion exceeds the re-insertion bound
SITE_L2P_RESERVE = "l2p_reserve"            # L2P subtable refuses a reservation

SITES = (
    SITE_CONTIGUOUS_ALLOC,
    SITE_CHUNK_ALLOC,
    SITE_CUCKOO_KICKS,
    SITE_L2P_RESERVE,
)


class FaultSpec:
    """One fault trigger.

    Parameters
    ----------
    site:
        One of :data:`SITES`.
    every:
        Deterministic mode: fire on every ``every``-th matching
        opportunity (1 = every opportunity).  Mutually exclusive with
        ``probability``.
    probability:
        Stochastic mode: fire with this probability per matching
        opportunity, drawn from the plan's seeded RNG (still
        deterministic for a fixed seed and call sequence).
    max_failures:
        Stop firing after this many faults (0 = unlimited).
    min_bytes:
        For allocation sites: only requests of at least this many
        (full-scale-equivalent) bytes are eligible.
    fmfi_above:
        For allocation sites: only fire when the machine FMFI exceeds
        this value (mirrors the paper's >0.7 failure rule).
    """

    __slots__ = ("site", "every", "probability", "max_failures", "min_bytes", "fmfi_above")

    def __init__(
        self,
        site: str,
        every: int = 0,
        probability: float = 0.0,
        max_failures: int = 0,
        min_bytes: int = 0,
        fmfi_above: float = -1.0,
    ) -> None:
        if site not in SITES:
            raise ConfigurationError(f"unknown fault site {site!r} (not in {SITES})")
        for name, value in (("every", every), ("max_failures", max_failures),
                            ("min_bytes", min_bytes)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"{name}={value!r} must be an integer count "
                    f"(got {type(value).__name__})"
                )
        if not isinstance(probability, (int, float)) or isinstance(probability, bool):
            raise ConfigurationError(
                f"probability={probability!r} must be a number in [0, 1] "
                f"(got {type(probability).__name__})"
            )
        if not isinstance(fmfi_above, (int, float)) or isinstance(fmfi_above, bool):
            raise ConfigurationError(
                f"fmfi_above={fmfi_above!r} must be a number "
                f"(got {type(fmfi_above).__name__})"
            )
        if every < 0:
            raise ConfigurationError(f"every={every} must be >= 0")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"probability={probability} must be in [0, 1]")
        if (every > 0) == (probability > 0.0):
            raise ConfigurationError(
                "exactly one of every / probability must be set "
                f"(got every={every}, probability={probability})"
            )
        if max_failures < 0:
            raise ConfigurationError(f"max_failures={max_failures} must be >= 0")
        if min_bytes < 0:
            raise ConfigurationError(f"min_bytes={min_bytes} must be >= 0")
        if fmfi_above >= 1.0:
            raise ConfigurationError(
                f"fmfi_above={fmfi_above} can never fire — FMFI is always "
                f"< 1.0 (use a negative value to disable the guard)"
            )
        self.site = site
        self.every = every
        self.probability = probability
        self.max_failures = max_failures
        self.min_bytes = min_bytes
        self.fmfi_above = float(fmfi_above)

    def to_dict(self) -> dict:
        """JSON-safe form (the fuzz corpus embeds fault plans this way)."""
        return {
            "site": self.site,
            "every": self.every,
            "probability": self.probability,
            "max_failures": self.max_failures,
            "min_bytes": self.min_bytes,
            "fmfi_above": self.fmfi_above,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSpec":
        """Rebuild from :meth:`to_dict` output (full validation applies)."""
        if not isinstance(raw, dict):
            raise ConfigurationError(
                f"fault spec must be a dict, got {type(raw).__name__}"
            )
        unknown = set(raw) - {
            "site", "every", "probability", "max_failures", "min_bytes",
            "fmfi_above",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec field(s) {sorted(unknown)}"
            )
        return cls(**raw)

    def __repr__(self) -> str:
        mode = f"every={self.every}" if self.every else f"probability={self.probability}"
        return (
            f"FaultSpec({self.site!r}, {mode}, max_failures={self.max_failures}, "
            f"min_bytes={self.min_bytes}, fmfi_above={self.fmfi_above})"
        )


class FaultPlan:
    """A seeded set of fault triggers with per-spec counters.

    ``decide(site, ...)`` counts one opportunity against every matching
    spec and returns the first spec that fires (or None).  Call sites
    translate a firing into their failure mode (raising a transient
    error, refusing a reservation, forcing an emergency resize).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        for i, spec in enumerate(self.specs):
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"specs[{i}]={spec!r} is not a FaultSpec "
                    f"(got {type(spec).__name__})"
                )
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigurationError(
                f"seed={seed!r} must be an integer (got {type(seed).__name__})"
            )
        self.seed = seed
        root = DeterministicRng(seed)
        self._rngs = [root.fork(salt=1000 + i) for i in range(len(self.specs))]
        self._opportunities = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)

    def replicate(self) -> "FaultPlan":
        """A fresh plan with the same specs and seed, counters zeroed.

        Each simulation build replicates the configured plan so repeated
        builds of the same configuration see identical fault sequences.
        """
        return FaultPlan(self.specs, seed=self.seed)

    def decide(self, site: str, nbytes: int = 0, fmfi: float = 0.0) -> Optional[FaultSpec]:
        """Consult the plan at ``site``; return the firing spec or None."""
        for i, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if nbytes < spec.min_bytes:
                continue
            if spec.fmfi_above >= 0.0 and fmfi <= spec.fmfi_above:
                continue
            if spec.max_failures and self._fired[i] >= spec.max_failures:
                continue
            self._opportunities[i] += 1
            if spec.every:
                fire = self._opportunities[i] % spec.every == 0
            else:
                fire = self._rngs[i].random() < spec.probability
            if fire:
                self._fired[i] += 1
                return spec
        return None

    def fired(self, site: Optional[str] = None) -> int:
        """Total faults fired (optionally restricted to one site)."""
        return sum(
            fired
            for spec, fired in zip(self.specs, self._fired)
            if site is None or spec.site == site
        )

    def opportunities(self, site: Optional[str] = None) -> int:
        return sum(
            count
            for spec, count in zip(self.specs, self._opportunities)
            if site is None or spec.site == site
        )

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, specs={self.specs!r})"


class FaultInjectedBudget(ChunkBudget):
    """A chunk budget that can refuse reservations on command.

    Wraps a real budget (typically an
    :class:`~repro.core.l2p.L2PSubtable`) and consults the fault plan's
    :data:`SITE_L2P_RESERVE` site before delegating.  A refused
    reservation looks exactly like L2P exhaustion, driving the caller
    down the chunk-size-transition / out-of-place path.
    """

    def __init__(
        self,
        inner: ChunkBudget,
        plan: FaultPlan,
        log: Optional[DegradationLog] = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.log = log

    def reserve(self, count: int) -> bool:
        if self.plan.decide(SITE_L2P_RESERVE) is not None:
            if self.log is not None:
                self.log.record(EVENT_FAULT, SITE_L2P_RESERVE, count=count)
            return False
        return self.inner.reserve(count)

    def release(self, count: int) -> None:
        self.inner.release(count)

    @property
    def in_use(self) -> int:
        return getattr(self.inner, "in_use", 0)


def detail_pairs(**kwargs) -> Tuple[Tuple[str, object], ...]:
    """Sorted (key, value) tuple for DegradationEvent details."""
    return tuple(sorted(kwargs.items()))
