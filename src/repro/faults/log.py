"""The degradation-event log: what went wrong and what it cost.

Every graceful-degradation path (retry, chunk-size fallback, resize
rollback, degrade-to-out-of-place) records one event here, with the
cycles spent recovering, so experiments can report "survived, at this
cost" rather than a bare pass/fail.  Events are frozen and ordered, so
two runs of the same seeded :class:`~repro.faults.plan.FaultPlan`
produce logs that compare equal — the determinism contract tests rely
on.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, List, Tuple

#: Event kinds, in roughly increasing severity.
EVENT_FAULT = "fault"              # an injected fault fired
EVENT_RETRY = "retry"              # transient failure retried with backoff
EVENT_FALLBACK = "fallback"        # chunk-size transition fell back to smaller chunks
EVENT_DEGRADE_OOP = "degrade_oop"  # in-place resize degraded to gradual out-of-place
EVENT_EAGER_RETRY = "eager_retry"  # eager migration re-created the old-size way
EVENT_ROLLBACK = "rollback"        # an in-flight resize was rolled back atomically
EVENT_ABORT = "abort"              # recovery exhausted; the failure propagated


class DegradationEvent:
    """One degradation event: kind, site, attempt, cycles, detail pairs.

    ``detail`` is a sorted tuple of (key, value) pairs so events are
    hashable and comparable; structured fields like way index or chunk
    size go there.
    """

    __slots__ = ("kind", "site", "attempt", "cycles", "detail")

    def __init__(
        self,
        kind: str,
        site: str,
        attempt: int = 0,
        cycles: float = 0.0,
        detail: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        self.kind = kind
        self.site = site
        self.attempt = attempt
        self.cycles = float(cycles)
        self.detail = tuple(detail)

    def _key(self) -> tuple:
        return (self.kind, self.site, self.attempt, self.cycles, self.detail)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DegradationEvent) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        extra = "".join(f", {k}={v!r}" for k, v in self.detail)
        return (
            f"DegradationEvent({self.kind!r}, {self.site!r}, "
            f"attempt={self.attempt}, cycles={self.cycles:.0f}{extra})"
        )


class DegradationLog:
    """Ordered record of degradation events plus the recovery-cycle total.

    ``obs`` (a :class:`repro.obs.Observability`, optional) mirrors every
    *injected-fault* event into the structured trace as
    ``fault_injected``; degradation bookkeeping itself stays trace-free
    since the recovery paths already record richer events here.
    """

    def __init__(self, obs=None) -> None:
        self.events: List[DegradationEvent] = []
        self.recovery_cycles = 0.0
        self.obs = obs

    def record(
        self,
        kind: str,
        site: str,
        attempt: int = 0,
        cycles: float = 0.0,
        **detail: Any,
    ) -> DegradationEvent:
        event = DegradationEvent(
            kind, site, attempt=attempt, cycles=cycles,
            detail=tuple(sorted(detail.items())),
        )
        self.events.append(event)
        self.recovery_cycles += event.cycles
        if self.obs is not None and kind == EVENT_FAULT:
            # Imported here: repro.obs is a leaf package, but this module
            # is imported by nearly everything and the event is rare.
            from repro.obs.trace import EVENT_FAULT_INJECTED

            self.obs.emit(EVENT_FAULT_INJECTED, site=site, attempt=attempt)
        return event

    def counts(self) -> Counter:
        """Event count per kind (the summary results carry)."""
        counter: Counter = Counter()
        for event in self.events:
            counter[event.kind] += 1
        return counter

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def signature(self) -> Tuple[tuple, ...]:
        """A comparable fingerprint of the whole log (determinism tests)."""
        return tuple(event._key() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.recovery_cycles = 0.0
