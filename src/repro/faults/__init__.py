"""Deterministic fault injection and graceful-degradation machinery.

The paper's central robustness claim (Section III, Figure 8) is that
ECPT *crashes* above 0.7 FMFI — a 64MB contiguous allocation fails —
while ME-HPT's small chunked ways survive.  This package makes that
claim testable end to end:

* :class:`FaultPlan` / :class:`FaultSpec` — seeded, deterministic fault
  injection at named sites (contiguous allocation, transient chunk
  allocation, cuckoo kick-bound overruns, L2P reservation refusals).
  The same seed and plan produce the same fault decisions and therefore
  the same degradation-event log on every run.
* :class:`DegradationLog` / :class:`DegradationEvent` — the structured
  record of every fault, retry, fallback, rollback and abort, with the
  cycles spent recovering.  Simulation results carry its summary so any
  experiment can report degradation behaviour.
* :class:`RecoveryPolicy` — cycle-accounted retry-with-backoff used by
  the allocators for transient failures.
* :class:`FaultInjectedBudget` — wraps a chunk budget (the L2P
  subtable) so reservation refusals can be injected, exercising the
  chunk-size-transition path.

The degradation paths themselves live where the state lives: atomic
in-place growth and :meth:`ElasticCuckooTable.rollback_resize` in
:mod:`repro.hashing`, fall-back-to-smaller-chunk in
:mod:`repro.core.mehpt`, retry-with-backoff in :mod:`repro.mem`, and
periodic invariant checking in :mod:`repro.sim`.
"""

from repro.faults.log import (
    EVENT_ABORT,
    EVENT_DEGRADE_OOP,
    EVENT_EAGER_RETRY,
    EVENT_FALLBACK,
    EVENT_FAULT,
    EVENT_RETRY,
    EVENT_ROLLBACK,
    DegradationEvent,
    DegradationLog,
)
from repro.faults.plan import (
    SITE_CHUNK_ALLOC,
    SITE_CONTIGUOUS_ALLOC,
    SITE_CUCKOO_KICKS,
    SITE_L2P_RESERVE,
    SITES,
    FaultInjectedBudget,
    FaultPlan,
    FaultSpec,
)
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjectedBudget",
    "DegradationEvent",
    "DegradationLog",
    "RecoveryPolicy",
    "DEFAULT_RECOVERY",
    "SITES",
    "SITE_CHUNK_ALLOC",
    "SITE_CONTIGUOUS_ALLOC",
    "SITE_CUCKOO_KICKS",
    "SITE_L2P_RESERVE",
    "EVENT_FAULT",
    "EVENT_RETRY",
    "EVENT_FALLBACK",
    "EVENT_DEGRADE_OOP",
    "EVENT_ROLLBACK",
    "EVENT_EAGER_RETRY",
    "EVENT_ABORT",
]
