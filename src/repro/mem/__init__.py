"""Physical-memory substrate: buddy allocation, fragmentation, costs, caches.

The paper's motivation (Section III) rests on measurements of how
expensive — or impossible — contiguous allocations are on a fragmented
machine.  This package reproduces that substrate:

* :mod:`repro.mem.buddy` — a frame-granularity buddy allocator, the
  structure whose free lists define memory fragmentation.
* :mod:`repro.mem.fragmentation` — the FMFI (free memory fragmentation
  index) metric over buddy free lists, and a fragmenter that drives a
  buddy system to a target FMFI like the open-source tool the paper uses.
* :mod:`repro.mem.alloc_cost` — the measured allocation+zeroing cost
  curve (4KB:4K cycles ... 64MB:120M cycles at 0.7 FMFI; failure above
  0.7 FMFI for 64MB requests).
* :mod:`repro.mem.allocator` — allocator objects that page-table storages
  charge their allocations to; they apply the cost model and track the
  contiguity and footprint statistics the evaluation reports.
* :mod:`repro.mem.cache` — a set-associative cache hierarchy latency
  model for page-table lines (L2/L3/DRAM round trips from Table III).
"""

from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.allocator import AllocationStats, BuddyBackedAllocator, CostModelAllocator
from repro.mem.buddy import BuddyAllocator
from repro.mem.cache import CacheHierarchy, CacheLevel
from repro.mem.fragmentation import Fragmenter, fmfi

__all__ = [
    "BuddyAllocator",
    "fmfi",
    "Fragmenter",
    "AllocationCostModel",
    "AllocationStats",
    "CostModelAllocator",
    "BuddyBackedAllocator",
    "CacheHierarchy",
    "CacheLevel",
]
