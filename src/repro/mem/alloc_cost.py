"""Contiguous-allocation cost model.

Section III of the paper measures, on a real Linux server fragmented to
0.7 FMFI with an open-source tool, the cycles needed to allocate *and
zero* contiguous chunks at 2 GHz:

    ====== ============
    chunk  cycles
    ====== ============
    4KB    4 K
    8KB    5 K
    1MB    750 K
    8MB    13 M
    64MB   120 M
    ====== ============

and observes that above 0.7 FMFI a 64MB allocation *fails* outright,
crashing the ECPT runs for GUPS and SysBench.  This module embeds that
measured curve:

* between anchors, cost interpolates log-log (cost grows super-linearly
  with size, as the paper notes);
* below 0.7 FMFI, the fragmentation-dependent part of the cost scales as
  ``(fmfi / 0.7) ** gamma`` down to the bare zeroing cost at FMFI 0;
* above the failure threshold, requests at or above ``fail_bytes`` raise
  :class:`~repro.common.errors.ContiguousAllocationError`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, ContiguousAllocationError
from repro.common.units import KB, MB

#: The paper's measured (chunk bytes, cycles) anchors at 0.7 FMFI, 2 GHz.
PAPER_ANCHORS: Tuple[Tuple[int, float], ...] = (
    (4 * KB, 4_000.0),
    (8 * KB, 5_000.0),
    (1 * MB, 750_000.0),
    (8 * MB, 13_000_000.0),
    (64 * MB, 120_000_000.0),
)

#: FMFI at which the anchors were measured.
ANCHOR_FMFI = 0.7

#: Bytes zeroed per cycle (cache-line streaming stores); sets the FMFI-0 floor.
ZERO_BYTES_PER_CYCLE = 16


class AllocationCostModel:
    """Cycle cost and failure model for contiguous allocations.

    Parameters
    ----------
    anchors:
        (size_bytes, cycles) measurements at ``anchor_fmfi``; defaults to
        the paper's Section III numbers.
    fail_fmfi / fail_bytes:
        Requests of at least ``fail_bytes`` fail when the machine's FMFI
        exceeds ``fail_fmfi`` (the paper's 64MB-at->0.7 failure).
    gamma:
        Exponent of the fragmentation scaling below the anchor FMFI.
    """

    def __init__(
        self,
        anchors: Sequence[Tuple[int, float]] = PAPER_ANCHORS,
        anchor_fmfi: float = ANCHOR_FMFI,
        fail_fmfi: float = 0.7,
        fail_bytes: int = 64 * MB,
        gamma: float = 3.0,
    ) -> None:
        if len(anchors) < 2:
            raise ConfigurationError("need at least two cost anchors")
        self.anchors = sorted(anchors)
        for size, cycles in self.anchors:
            if size <= 0 or cycles <= 0:
                raise ConfigurationError("anchor sizes and cycles must be positive")
        self.anchor_fmfi = anchor_fmfi
        self.fail_fmfi = fail_fmfi
        self.fail_bytes = fail_bytes
        self.gamma = gamma
        self._cache: Dict[Tuple[int, float], float] = {}

    # -- public API ----------------------------------------------------------

    def can_allocate(self, nbytes: int, fmfi: float) -> bool:
        """Whether a contiguous allocation of ``nbytes`` succeeds at ``fmfi``."""
        return not (nbytes >= self.fail_bytes and fmfi > self.fail_fmfi)

    def check(self, nbytes: int, fmfi: float) -> None:
        """Raise :class:`ContiguousAllocationError` if the request fails."""
        if not self.can_allocate(nbytes, fmfi):
            raise ContiguousAllocationError(nbytes, fmfi)

    def cycles(self, nbytes: int, fmfi: Optional[float] = None) -> float:
        """Cycles to allocate and zero ``nbytes`` contiguously at ``fmfi``.

        ``fmfi`` defaults to the anchor FMFI (the paper's 0.7 setting).
        """
        if fmfi is None:
            fmfi = self.anchor_fmfi
        self.check(nbytes, fmfi)
        key = (nbytes, round(fmfi, 4))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        anchor_cost = self._anchor_cycles(nbytes)
        zero_cost = self.zeroing_cycles(nbytes)
        frag_part = max(0.0, anchor_cost - zero_cost)
        scale = (fmfi / self.anchor_fmfi) ** self.gamma if fmfi > 0 else 0.0
        # Above the measurement point the search cost keeps growing; cap
        # the scaling at the failure boundary where behaviour is undefined.
        scale = min(scale, (1.0 / self.anchor_fmfi) ** self.gamma)
        cost = zero_cost + frag_part * scale
        self._cache[key] = cost
        return cost

    @staticmethod
    def zeroing_cycles(nbytes: int) -> float:
        """The FMFI-independent cost floor: zeroing the chunk."""
        return nbytes / ZERO_BYTES_PER_CYCLE

    # -- internals -------------------------------------------------------

    def _anchor_cycles(self, nbytes: int) -> float:
        """Log-log interpolate/extrapolate the anchor curve at ``nbytes``."""
        anchors = self.anchors
        if nbytes <= anchors[0][0]:
            # Below the smallest anchor, scale linearly with size (the
            # per-page fault/zero costs dominate there).
            return anchors[0][1] * nbytes / anchors[0][0]
        for (size_lo, cost_lo), (size_hi, cost_hi) in zip(anchors, anchors[1:]):
            if nbytes <= size_hi:
                t = (math.log(nbytes) - math.log(size_lo)) / (
                    math.log(size_hi) - math.log(size_lo)
                )
                return math.exp(
                    math.log(cost_lo) + t * (math.log(cost_hi) - math.log(cost_lo))
                )
        # Extrapolate beyond the largest anchor with the last segment slope.
        (size_lo, cost_lo), (size_hi, cost_hi) = anchors[-2], anchors[-1]
        slope = (math.log(cost_hi) - math.log(cost_lo)) / (
            math.log(size_hi) - math.log(size_lo)
        )
        return math.exp(math.log(cost_hi) + slope * (math.log(nbytes) - math.log(size_hi)))
