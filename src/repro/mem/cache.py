"""Cache-hierarchy latency model for page-table accesses.

Page walks hit the regular cache hierarchy; Table III gives the round
trips: L2 512KB/8-way at 16 cycles, shared L3 at 56 cycles average, DRAM
at 200 cycles average.  (Page-table lines essentially never hit the tiny
L1D on the modelled workloads, so the model starts at L2; the L2 latency
already covers the L1 lookup on the way.)

Because the simulator only routes *page-table* lines through this model
(data accesses are folded into the base CPI), each level exposes an
``effective_fraction`` knob: the share of its capacity page-table lines
can realistically hold onto while competing with application data.  The
defaults follow the paper's workloads, which are memory-intensive and
keep caches under heavy data pressure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.units import CACHE_LINE, is_power_of_two


class CacheLevel:
    """One set-associative LRU cache level keyed by line address."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        ways: int,
        hit_cycles: int,
        line_bytes: int = CACHE_LINE,
        effective_fraction: float = 1.0,
    ) -> None:
        capacity = int(capacity_bytes * effective_fraction)
        lines = max(ways, capacity // line_bytes)
        sets = max(1, lines // ways)
        if not is_power_of_two(sets):
            # Round the set count down to a power of two for cheap indexing.
            sets = 1 << (sets.bit_length() - 1)
        self.name = name
        self.ways = ways
        self.hit_cycles = hit_cycles
        self.line_bytes = line_bytes
        self.num_sets = sets
        self._set_mask = sets - 1
        # Each set is an MRU-ordered list of tags; assoc is small (<=16).
        self._sets: List[List[int]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line_addr: int) -> bool:
        """Look up (and fill on miss) ``line_addr``; return True on hit."""
        index = line_addr & self._set_mask
        tag = line_addr  # full address as tag: exact match, no aliasing
        entries = self._sets[index]
        if tag in entries:
            if entries[0] != tag:
                entries.remove(tag)
                entries.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        entries.insert(0, tag)
        if len(entries) > self.ways:
            entries.pop()
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without updating LRU or filling."""
        index = line_addr & self._set_mask
        return line_addr in self._sets[index]

    def invalidate_all(self) -> None:
        for entries in self._sets:
            entries.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """L2 + L3 + DRAM latency model for page-table line addresses.

    ``access`` returns the round-trip cycles of one memory reference.
    ``access_parallel`` returns the cycles of several references issued
    concurrently (the HPT multi-way probe): the max of the individual
    latencies, since modern cores overlap independent misses.
    """

    def __init__(
        self,
        levels: Optional[List[CacheLevel]] = None,
        dram_cycles: int = 200,
    ) -> None:
        if levels is None:
            levels = [
                CacheLevel("L2", 512 * 1024, 8, 16, effective_fraction=0.25),
                CacheLevel("L3", 16 * 1024 * 1024, 16, 56, effective_fraction=0.25),
            ]
        if not levels:
            raise ConfigurationError("cache hierarchy needs at least one level")
        self.levels = levels
        self.dram_cycles = dram_cycles
        self.dram_accesses = 0

    def access(self, line_addr: int) -> int:
        """One reference: cycles to the first level that hits (or DRAM)."""
        for level in self.levels:
            if level.access(line_addr):
                return level.hit_cycles
        self.dram_accesses += 1
        return self.dram_cycles

    def access_parallel(self, line_addrs: List[int]) -> int:
        """Concurrent independent references: the slowest one dominates."""
        if not line_addrs:
            return 0
        return max(self.access(addr) for addr in line_addrs)

    def invalidate_all(self) -> None:
        for level in self.levels:
            level.invalidate_all()
