"""Frame-granularity buddy allocator.

This models the Linux physical-page allocator closely enough to study
fragmentation: power-of-two blocks of 4KB frames, per-order free lists,
splitting on allocation and buddy coalescing on free.  The free lists are
what the FMFI fragmentation metric (:mod:`repro.mem.fragmentation`) is
computed over.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.common.errors import ConfigurationError, OutOfMemoryError, SimulationError
from repro.common.units import PAGE_4K


class BuddyAllocator:
    """A buddy allocator over ``total_bytes`` of frame-granular memory.

    Addresses are frame numbers (not bytes).  ``max_order`` is the largest
    block order managed; order ``k`` blocks span ``2**k`` frames.
    """

    def __init__(self, total_bytes: int, max_order: int = 15, frame_bytes: int = PAGE_4K) -> None:
        if total_bytes % frame_bytes != 0:
            raise ConfigurationError("total bytes must be frame aligned")
        self.frame_bytes = frame_bytes
        self.total_frames = total_bytes // frame_bytes
        if self.total_frames == 0:
            raise ConfigurationError("memory smaller than one frame")
        # Clamp the top order so whole memory tiles into top-order blocks.
        while max_order > 0 and self.total_frames % (1 << max_order) != 0:
            max_order -= 1
        self.max_order = max_order
        top = 1 << max_order
        #: free_lists[k] is the set of start frames of free order-k blocks.
        self.free_lists: List[Set[int]] = [set() for _ in range(max_order + 1)]
        for start in range(0, self.total_frames, top):
            self.free_lists[max_order].add(start)
        #: Allocated blocks: start frame -> order (needed to free correctly).
        self._allocated: Dict[int, int] = {}

    # -- queries -----------------------------------------------------------

    def free_frames(self) -> int:
        """Total free frames across all orders."""
        return sum(len(blocks) << order for order, blocks in enumerate(self.free_lists))

    def free_frames_at_or_above(self, order: int) -> int:
        """Free frames residing in blocks of order >= ``order``."""
        return sum(
            len(blocks) << o
            for o, blocks in enumerate(self.free_lists)
            if o >= order
        )

    def largest_free_order(self) -> int:
        """The largest order with a free block, or -1 if memory is exhausted."""
        for order in range(self.max_order, -1, -1):
            if self.free_lists[order]:
                return order
        return -1

    def order_for_bytes(self, nbytes: int) -> int:
        """Smallest order whose block covers ``nbytes``."""
        frames = -(-nbytes // self.frame_bytes)  # ceil division
        return (frames - 1).bit_length() if frames > 1 else 0

    # -- allocation --------------------------------------------------------

    def alloc_order(self, order: int) -> int:
        """Allocate an order-``order`` block; return its start frame."""
        if order > self.max_order:
            raise OutOfMemoryError(f"order {order} exceeds max order {self.max_order}")
        current = order
        while current <= self.max_order and not self.free_lists[current]:
            current += 1
        if current > self.max_order:
            raise OutOfMemoryError(
                f"no free block of order >= {order} "
                f"(largest free: {self.largest_free_order()})"
            )
        start = min(self.free_lists[current])
        self.free_lists[current].remove(start)
        while current > order:
            current -= 1
            buddy = start + (1 << current)
            self.free_lists[current].add(buddy)
        self._allocated[start] = order
        return start

    def alloc_bytes(self, nbytes: int) -> int:
        """Allocate the smallest block covering ``nbytes``; return start frame."""
        return self.alloc_order(self.order_for_bytes(nbytes))

    def free(self, start: int) -> None:
        """Free a previously allocated block, coalescing with free buddies."""
        if start not in self._allocated:
            raise ConfigurationError(f"frame {start} is not an allocated block start")
        order = self._allocated.pop(start)
        while order < self.max_order:
            buddy = start ^ (1 << order)
            if buddy in self.free_lists[order]:
                self.free_lists[order].remove(buddy)
                start = min(start, buddy)
                order += 1
            else:
                break
        self.free_lists[order].add(start)

    def allocated_blocks(self) -> Dict[int, int]:
        """Return a copy of the allocated {start_frame: order} map."""
        return dict(self._allocated)

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the allocator's structural invariants.

        Checked: every block (free or allocated) is aligned to its order
        and inside memory, no two blocks overlap, free + allocated frames
        exactly tile memory, and no free block has a free buddy (i.e.
        coalescing has run to completion).  Raises
        :class:`~repro.common.errors.SimulationError` with structured
        context on the first violation.
        """
        covered = 0
        blocks = []  # (start, order, is_free)
        for order, frees in enumerate(self.free_lists):
            for start in frees:
                blocks.append((start, order, True))
        for start, order in self._allocated.items():
            blocks.append((start, order, False))
        for start, order, is_free in blocks:
            size = 1 << order
            if start % size != 0:
                raise SimulationError(
                    "buddy block misaligned for its order",
                    component="buddy", start=start, order=order, free=is_free,
                )
            if start + size > self.total_frames:
                raise SimulationError(
                    "buddy block extends past end of memory",
                    component="buddy", start=start, order=order,
                    total_frames=self.total_frames,
                )
            covered += size
        if covered != self.total_frames:
            raise SimulationError(
                "buddy blocks do not tile memory (overlap or leak)",
                component="buddy", covered_frames=covered,
                total_frames=self.total_frames,
                free_frames=self.free_frames(),
                allocated=len(self._allocated),
            )
        # Tiling + alignment rules out overlap only if starts are distinct
        # per order region; do an explicit overlap scan to be safe.
        blocks.sort()
        prev_end = 0
        for start, order, is_free in blocks:
            if start < prev_end:
                raise SimulationError(
                    "buddy blocks overlap",
                    component="buddy", start=start, order=order,
                    previous_end=prev_end, free=is_free,
                )
            prev_end = start + (1 << order)
        for order in range(self.max_order):
            for start in self.free_lists[order]:
                if start ^ (1 << order) in self.free_lists[order]:
                    raise SimulationError(
                        "free buddy pair left uncoalesced",
                        component="buddy", start=start, order=order,
                    )
