"""Fragmentation metric (FMFI) and a memory fragmenter.

The paper quantifies fragmentation with the FMFI metric of Gorman and
Whitcroft ("The what, the why and the where to of anti-fragmentation"),
also called the *unusable free space index*: for an allocation of order
``j``,

    FMFI_j = (TotalFree - FreeFrames_{>=j}) / TotalFree

where ``FreeFrames_{>=j}`` counts free frames residing in blocks of order
``j`` or larger.  FMFI 0 means every free frame is usable for the
request; FMFI 1 means none are.  The paper's experiments run at FMFI 0.7
("high") for 64MB requests.

:class:`Fragmenter` reproduces the effect of the open-source
fragmentation tool the paper cites.  Rather than freeing frames at random
and hoping the buddy coalescing lands on the target (which is unstable at
high orders, where the index moves in 2^order-frame jumps), it constructs
the target state directly: it grabs all of memory at order 0, then frees

* ``N`` fully-aligned order-``j`` regions, where ``N * 2^j`` approximates
  the *usable* share ``(1 - target) * free_budget``, and
* scattered single frames (even indices only, so no two freed frames are
  buddies and nothing coalesces) for the unusable share.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.common.rng import DeterministicRng, make_rng
from repro.mem.buddy import BuddyAllocator


def fmfi(buddy: BuddyAllocator, order: int) -> float:
    """Return the FMFI of ``buddy`` for allocations of ``order``.

    Returns 1.0 when no memory is free at all (nothing is usable).
    """
    total_free = buddy.free_frames()
    if total_free == 0:
        return 1.0
    usable = buddy.free_frames_at_or_above(order)
    return (total_free - usable) / total_free


class Fragmenter:
    """Drive a buddy allocator to a target FMFI for a given order."""

    def __init__(self, buddy: BuddyAllocator, rng: Optional[DeterministicRng] = None) -> None:
        self.buddy = buddy
        self.rng = make_rng(rng, default_seed=42)
        self._held: Set[int] = set()

    def grab_all(self) -> None:
        """Allocate every frame at order 0 (breaking up all large blocks)."""
        while True:
            try:
                self._held.add(self.buddy.alloc_order(0))
            except OutOfMemoryError:
                break

    def fragment_to(
        self,
        target_fmfi: float,
        order: int,
        free_fraction: float = 0.5,
        tolerance: float = 0.02,
    ) -> float:
        """Fragment memory to ``target_fmfi`` for ``order``-sized requests.

        ``free_fraction`` is the share of memory left free (the fragmenter
        keeps holding the rest, as a real memory hog would).  Returns the
        achieved FMFI, within ``tolerance`` except at extremes where the
        order granularity forbids it.
        """
        if not 0.0 <= target_fmfi <= 1.0:
            raise ConfigurationError(f"target FMFI {target_fmfi} out of range")
        if not 0.0 < free_fraction <= 1.0:
            raise ConfigurationError(f"free fraction {free_fraction} out of range")
        self.grab_all()
        free_budget = int(self.buddy.total_frames * free_fraction)
        block_frames = 1 << order
        # The usable share comes in whole order-sized blocks; the scatter
        # share is then sized so usable/(usable+scatter) hits the target
        # exactly, even when the block granularity is coarse.  The total
        # freed memory may therefore deviate from free_fraction a little.
        if target_fmfi >= 1.0:
            nblocks = 0
            scatter = free_budget
        else:
            nblocks = round((1.0 - target_fmfi) * free_budget / block_frames)
            if nblocks == 0:
                # The usable share rounds to zero whole blocks: the closest
                # achievable state is full fragmentation.
                scatter = free_budget
            else:
                usable = nblocks * block_frames
                scatter = int(round(usable * target_fmfi / (1.0 - target_fmfi)))
        # Free the aligned usable regions from the top of memory downward.
        next_region = (self.buddy.total_frames // block_frames) * block_frames
        for _ in range(nblocks):
            next_region -= block_frames
            if next_region < 0:
                break
            for frame in range(next_region, next_region + block_frames):
                self._held.discard(frame)
                self.buddy.free(frame)
        # Scatter the unusable share: even frames only, from the bottom,
        # so no two freed frames are buddies and nothing coalesces.
        frame = 0
        limit = next_region if nblocks else self.buddy.total_frames
        freed_scatter = 0
        while freed_scatter < scatter and frame < limit:
            if frame in self._held:
                self._held.discard(frame)
                self.buddy.free(frame)
                freed_scatter += 1
            frame += 2
        return fmfi(self.buddy, order)

    def release_all(self) -> None:
        """Free every frame the fragmenter still holds."""
        for frame in sorted(self._held):
            self.buddy.free(frame)
        self._held.clear()
