"""Allocator objects that page-table storages charge allocations to.

Storages (:mod:`repro.hashing.storage`) call ``alloc(nbytes)`` /
``free(handle)`` on a duck-typed allocator.  Two implementations:

* :class:`CostModelAllocator` — the default for experiments: no placement
  simulation, but every allocation is charged cycles from the
  :class:`~repro.mem.alloc_cost.AllocationCostModel` at a configured FMFI
  and recorded in :class:`AllocationStats` (footprint, peak footprint,
  largest-ever contiguous request — the quantities of Table I, Figure 8,
  and Figure 10).
* :class:`BuddyBackedAllocator` — additionally places each allocation in
  a real :class:`~repro.mem.buddy.BuddyAllocator`, so contiguity failures
  emerge from actual buddy state rather than the threshold rule.  Used by
  the fragmentation study example and the allocation-cost experiment.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import fmfi as fmfi_of


class AllocationStats:
    """Running statistics over one allocator's lifetime.

    A single stats object can be shared by several allocators (e.g. all
    page sizes of one process) so the totals aggregate naturally.
    """

    def __init__(self) -> None:
        self.allocations = 0
        self.frees = 0
        self.cycles = 0.0
        self.current_bytes = 0
        self.peak_bytes = 0
        self.max_contiguous_bytes = 0
        self.failed_allocations = 0
        #: histogram: request size -> count
        self.size_histogram: Dict[int, int] = {}

    def on_alloc(self, nbytes: int, cycles: float) -> None:
        self.allocations += 1
        self.cycles += cycles
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.max_contiguous_bytes = max(self.max_contiguous_bytes, nbytes)
        self.size_histogram[nbytes] = self.size_histogram.get(nbytes, 0) + 1

    def on_free(self, nbytes: int) -> None:
        self.frees += 1
        self.current_bytes -= nbytes

    def on_failure(self) -> None:
        self.failed_allocations += 1


class CostModelAllocator:
    """Charge allocations against the measured cost curve; track footprint.

    ``scale`` supports scaled-footprint experiments: a request for ``n``
    bytes is costed, failure-checked, and *reported* as ``n * scale``
    bytes, i.e. at its full-scale equivalent.  Because every page-table
    structure in the system is a power of two, running a workload at
    ``1/scale`` footprint with ``scale``-fold accounting reproduces the
    full-scale allocation sequence exactly (same doubling ladder, shifted).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        cost_model: Optional[AllocationCostModel] = None,
        fmfi: float = 0.7,
        stats: Optional[AllocationStats] = None,
        scale: int = 1,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.fmfi = fmfi
        self.stats = stats if stats is not None else AllocationStats()
        self.scale = scale
        self._live: Dict[int, int] = {}

    def alloc(self, nbytes: int) -> int:
        effective = nbytes * self.scale
        try:
            cycles = self.cost_model.cycles(effective, self.fmfi)
        except Exception:
            self.stats.on_failure()
            raise
        handle = next(self._ids)
        self._live[handle] = effective
        self.stats.on_alloc(effective, cycles)
        return handle

    def free(self, handle: int) -> None:
        nbytes = self._live.pop(handle)
        self.stats.on_free(nbytes)


class BuddyBackedAllocator:
    """Place allocations in a real buddy system and charge the cost model.

    Contiguity failures here come from the buddy allocator itself (no
    block of the needed order exists), which is the mechanism behind the
    paper's "ECPT runs are unable to finish" observation.
    """

    def __init__(
        self,
        buddy: BuddyAllocator,
        cost_model: Optional[AllocationCostModel] = None,
        stats: Optional[AllocationStats] = None,
    ) -> None:
        self.buddy = buddy
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.stats = stats if stats is not None else AllocationStats()
        self._live: Dict[int, int] = {}

    def current_fmfi(self, nbytes: int) -> float:
        return fmfi_of(self.buddy, self.buddy.order_for_bytes(nbytes))

    def alloc(self, nbytes: int) -> int:
        level = self.current_fmfi(nbytes)
        try:
            start = self.buddy.alloc_bytes(nbytes)
        except Exception:
            self.stats.on_failure()
            raise
        cycles = self.cost_model.cycles(
            nbytes, min(level, self.cost_model.fail_fmfi)
        )
        self._live[start] = nbytes
        self.stats.on_alloc(nbytes, cycles)
        return start

    def free(self, handle: int) -> None:
        nbytes = self._live.pop(handle)
        self.buddy.free(handle)
        self.stats.on_free(nbytes)
