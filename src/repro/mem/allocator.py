"""Allocator objects that page-table storages charge allocations to.

Storages (:mod:`repro.hashing.storage`) call ``alloc(nbytes)`` /
``free(handle)`` on a duck-typed allocator.  Two implementations:

* :class:`CostModelAllocator` — the default for experiments: no placement
  simulation, but every allocation is charged cycles from the
  :class:`~repro.mem.alloc_cost.AllocationCostModel` at a configured FMFI
  and recorded in :class:`AllocationStats` (footprint, peak footprint,
  largest-ever contiguous request — the quantities of Table I, Figure 8,
  and Figure 10).
* :class:`BuddyBackedAllocator` — additionally places each allocation in
  a real :class:`~repro.mem.buddy.BuddyAllocator`, so contiguity failures
  emerge from actual buddy state rather than the threshold rule.  Used by
  the fragmentation study example and the allocation-cost experiment.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.common.errors import ContiguousAllocationError, TransientAllocationError
from repro.faults.log import EVENT_ABORT, EVENT_FAULT, EVENT_RETRY, DegradationLog
from repro.faults.plan import SITE_CHUNK_ALLOC, SITE_CONTIGUOUS_ALLOC, FaultPlan
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy
from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import fmfi as fmfi_of


class _FaultHooks:
    """Shared fault-injection/recovery plumbing for both allocators.

    ``_injected(nbytes, fmfi, attempt)`` raises if the plan fires at one
    of the allocation sites; ``_recover(exc, attempt)`` decides whether a
    failure is retryable under the recovery policy, charging the backoff
    cycles and logging the retry — or logging the abort and returning
    False so the caller re-raises.
    """

    fault_plan: Optional[FaultPlan] = None
    recovery: Optional[RecoveryPolicy] = None
    degradation: Optional[DegradationLog] = None

    def _arm(
        self,
        fault_plan: Optional[FaultPlan],
        recovery: Optional[RecoveryPolicy],
        degradation: Optional[DegradationLog],
    ) -> None:
        self.fault_plan = fault_plan
        self.recovery = recovery if recovery is not None else (
            DEFAULT_RECOVERY if fault_plan is not None else None
        )
        self.degradation = degradation

    def _injected(self, nbytes: int, fmfi: float, attempt: int) -> None:
        if self.fault_plan is None:
            return
        if self.fault_plan.decide(SITE_CHUNK_ALLOC, nbytes=nbytes, fmfi=fmfi):
            if self.degradation is not None:
                self.degradation.record(
                    EVENT_FAULT, SITE_CHUNK_ALLOC,
                    attempt=attempt, nbytes=nbytes, fmfi=fmfi,
                )
            raise TransientAllocationError(nbytes, fmfi, attempt=attempt)
        if self.fault_plan.decide(SITE_CONTIGUOUS_ALLOC, nbytes=nbytes, fmfi=fmfi):
            if self.degradation is not None:
                self.degradation.record(
                    EVENT_FAULT, SITE_CONTIGUOUS_ALLOC,
                    attempt=attempt, nbytes=nbytes, fmfi=fmfi,
                )
            raise ContiguousAllocationError(nbytes, fmfi, attempt=attempt)

    def _recover(self, exc: Exception, attempt: int, nbytes: int) -> bool:
        """Return True to retry ``exc`` (backoff charged), False to abort."""
        site = (
            SITE_CHUNK_ALLOC
            if getattr(exc, "transient", False)
            else SITE_CONTIGUOUS_ALLOC
        )
        retryable = (
            getattr(exc, "transient", False)
            and self.recovery is not None
            and attempt < self.recovery.max_retries
        )
        if not retryable:
            if self.degradation is not None:
                self.degradation.record(
                    EVENT_ABORT, site, attempt=attempt, nbytes=nbytes,
                )
            return False
        backoff = self.recovery.backoff_cycles(attempt + 1)
        self.stats.cycles += backoff
        if self.degradation is not None:
            self.degradation.record(
                EVENT_RETRY, site,
                attempt=attempt + 1, cycles=backoff, nbytes=nbytes,
            )
        return True


class AllocationStats:
    """Running statistics over one allocator's lifetime.

    A single stats object can be shared by several allocators (e.g. all
    page sizes of one process) so the totals aggregate naturally.
    """

    def __init__(self) -> None:
        self.allocations = 0
        self.frees = 0
        self.cycles = 0.0
        self.current_bytes = 0
        self.peak_bytes = 0
        self.max_contiguous_bytes = 0
        self.failed_allocations = 0
        #: histogram: request size -> count
        self.size_histogram: Dict[int, int] = {}

    def on_alloc(self, nbytes: int, cycles: float) -> None:
        self.allocations += 1
        self.cycles += cycles
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.max_contiguous_bytes = max(self.max_contiguous_bytes, nbytes)
        self.size_histogram[nbytes] = self.size_histogram.get(nbytes, 0) + 1

    def on_free(self, nbytes: int) -> None:
        self.frees += 1
        self.current_bytes -= nbytes

    def on_failure(self) -> None:
        self.failed_allocations += 1


class CostModelAllocator(_FaultHooks):
    """Charge allocations against the measured cost curve; track footprint.

    ``scale`` supports scaled-footprint experiments: a request for ``n``
    bytes is costed, failure-checked, and *reported* as ``n * scale``
    bytes, i.e. at its full-scale equivalent.  Because every page-table
    structure in the system is a power of two, running a workload at
    ``1/scale`` footprint with ``scale``-fold accounting reproduces the
    full-scale allocation sequence exactly (same doubling ladder, shifted).

    With a :class:`~repro.faults.FaultPlan` armed, each allocation first
    consults the plan (which may inject a transient or permanent
    failure); transient failures are retried up to
    ``recovery.max_retries`` times with cycle-charged backoff before
    aborting.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        cost_model: Optional[AllocationCostModel] = None,
        fmfi: float = 0.7,
        stats: Optional[AllocationStats] = None,
        scale: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        degradation: Optional[DegradationLog] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.fmfi = fmfi
        self.stats = stats if stats is not None else AllocationStats()
        self.scale = scale
        self._live: Dict[int, int] = {}
        self._arm(fault_plan, recovery, degradation)

    def alloc(self, nbytes: int) -> int:
        effective = nbytes * self.scale
        attempt = 0
        while True:
            try:
                self._injected(effective, self.fmfi, attempt)
                cycles = self.cost_model.cycles(effective, self.fmfi)
                break
            except ContiguousAllocationError as exc:
                self.stats.on_failure()
                if not self._recover(exc, attempt, effective):
                    raise
                attempt += 1
        handle = next(self._ids)
        self._live[handle] = effective
        self.stats.on_alloc(effective, cycles)
        return handle

    def free(self, handle: int) -> None:
        nbytes = self._live.pop(handle)
        self.stats.on_free(nbytes)


class BuddyBackedAllocator(_FaultHooks):
    """Place allocations in a real buddy system and charge the cost model.

    Contiguity failures here come from the buddy allocator itself (no
    block of the needed order exists), which is the mechanism behind the
    paper's "ECPT runs are unable to finish" observation.  A fault plan
    can additionally inject transient failures, which are retried with
    backoff like on the cost-model path.
    """

    def __init__(
        self,
        buddy: BuddyAllocator,
        cost_model: Optional[AllocationCostModel] = None,
        stats: Optional[AllocationStats] = None,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        degradation: Optional[DegradationLog] = None,
    ) -> None:
        self.buddy = buddy
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.stats = stats if stats is not None else AllocationStats()
        self._live: Dict[int, int] = {}
        self._arm(fault_plan, recovery, degradation)

    def current_fmfi(self, nbytes: int) -> float:
        return fmfi_of(self.buddy, self.buddy.order_for_bytes(nbytes))

    def alloc(self, nbytes: int) -> int:
        attempt = 0
        while True:
            level = self.current_fmfi(nbytes)
            try:
                self._injected(nbytes, level, attempt)
                start = self.buddy.alloc_bytes(nbytes)
                break
            except Exception as exc:
                self.stats.on_failure()
                if not self._recover(exc, attempt, nbytes):
                    raise
                attempt += 1
        cycles = self.cost_model.cycles(
            nbytes, min(level, self.cost_model.fail_fmfi)
        )
        self._live[start] = nbytes
        self.stats.on_alloc(nbytes, cycles)
        return start

    def free(self, handle: int) -> None:
        nbytes = self._live.pop(handle)
        self.buddy.free(handle)
        self.stats.on_free(nbytes)
