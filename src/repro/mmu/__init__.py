"""MMU hardware models: TLBs, the TLB hierarchy, and walk plumbing.

* :mod:`repro.mmu.tlb` — set-associative LRU TLBs.
* :mod:`repro.mmu.tlb_array` — numpy-matrix TLB state with exact
  batched LRU probes (the vectorized engine's hot path).
* :mod:`repro.mmu.hierarchy` — the Table III two-level TLB organization
  (per-page-size L1s, big L2s) plus miss routing to a page walker.
* :mod:`repro.mmu.walk` — the walker interface shared by the radix, ECPT
  and ME-HPT walkers.
"""

from repro.mmu.hierarchy import TlbHierarchy, TranslationOutcome
from repro.mmu.tlb import SetAssociativeTlb
from repro.mmu.tlb_array import ArrayTlb
from repro.mmu.walk import WalkResult

__all__ = [
    "ArrayTlb",
    "SetAssociativeTlb",
    "TlbHierarchy",
    "TranslationOutcome",
    "WalkResult",
]
