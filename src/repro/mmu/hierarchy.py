"""The two-level TLB hierarchy of the modelled core (Table III).

Per-page-size L1 DTLBs (probed in parallel, 2-cycle round trip folded
into the pipeline: an L1 hit adds no visible translation latency), big
split L2 TLBs (12 cycles), and on a full miss the configured page walker.

The hierarchy is page-table-organization agnostic: it takes any walker
with a ``walk(vpn) -> WalkResult`` method (radix, ECPT or ME-HPT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hashing.clustered import PAGE_SHIFT
from repro.mmu.tlb import SetAssociativeTlb
from repro.mmu.walk import WalkResult
from repro.obs.trace import EVENT_TLB_MISS


@dataclass
class TranslationOutcome:
    """What one translation cost and where it was satisfied."""

    level: str  # "l1", "l2", "walk", or "fault"
    cycles: int
    page_size: Optional[str]
    ppn: Optional[int] = None
    walk: Optional[WalkResult] = None


#: Table III L1/L2 DTLB geometry per page size: (entries, ways, cycles).
DEFAULT_L1_GEOMETRY = {"4K": (64, 4, 2), "2M": (32, 4, 2), "1G": (4, 4, 2)}
DEFAULT_L2_GEOMETRY = {"4K": (1024, 8, 12), "2M": (1024, 8, 12), "1G": (16, 4, 12)}


class TlbHierarchy:
    """L1 + L2 TLBs in front of a page walker."""

    def __init__(
        self,
        walker,
        l1_geometry: Optional[Dict[str, tuple]] = None,
        l2_geometry: Optional[Dict[str, tuple]] = None,
        obs=None,
        numa=None,
    ) -> None:
        l1_geometry = l1_geometry or DEFAULT_L1_GEOMETRY
        l2_geometry = l2_geometry or DEFAULT_L2_GEOMETRY
        self.walker = walker
        #: Optional repro.obs.Observability; a full TLB miss emits a
        #: ``tlb_miss`` trace event with its visible cycle cost.
        self.obs = obs
        #: Optional NUMA accounting hook (``on_walk(cycles)``): the
        #: datacenter machine model attributes each page walk's cycles to
        #: the socket the owning tenant is currently scheduled on.
        self.numa = numa
        self.l1: Dict[str, SetAssociativeTlb] = {
            size: SetAssociativeTlb(f"L1-{size}", *geom)
            for size, geom in l1_geometry.items()
        }
        self.l2: Dict[str, SetAssociativeTlb] = {
            size: SetAssociativeTlb(f"L2-{size}", *geom)
            for size, geom in l2_geometry.items()
        }
        #: Cycles a full miss pays for its L2 probe — the slowest L2 TLB,
        #: since the per-size L2s are probed in parallel.  Precomputed:
        #: the per-miss ``max()`` over the dict showed up in profiles.
        self.l2_miss_probe_cycles = max(t.hit_cycles for t in self.l2.values())
        # Probe lists with the page shift resolved once per TLB, so the
        # hot loop does no dict lookups in PAGE_SHIFT.
        self._l1_probes = [
            (size, tlb, PAGE_SHIFT[size]) for size, tlb in self.l1.items()
        ]
        self._l2_probes = [
            (size, tlb, PAGE_SHIFT[size]) for size, tlb in self.l2.items()
        ]
        self.translations = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.walks = 0
        self.faults = 0

    @staticmethod
    def _page_number(vpn: int, page_size: str) -> int:
        return vpn >> PAGE_SHIFT[page_size]

    def translate(self, vpn: int) -> TranslationOutcome:
        """Translate ``vpn``, walking the page table on a full TLB miss.

        A fault outcome means the walker found no mapping; the caller
        (the kernel model) services the fault and calls :meth:`fill`.
        """
        self.translations += 1
        # All per-size L1 TLBs are probed in parallel; a hit is free.
        for page_size, tlb, shift in self._l1_probes:
            if tlb.lookup(vpn >> shift):
                self.l1_hits += 1
                return TranslationOutcome("l1", 0, page_size)
        # L2 TLBs (also parallel): one fixed latency on a hit.
        for page_size, tlb, shift in self._l2_probes:
            if tlb.lookup(vpn >> shift):
                self.l2_hits += 1
                self.l1[page_size].fill(vpn >> shift)
                return TranslationOutcome("l2", tlb.hit_cycles, page_size)
        # Full miss: pay the L2 probe, then walk.
        l2_cycles = self.l2_miss_probe_cycles
        walk = self.walker.walk(vpn)
        self.walks += 1
        if self.numa is not None:
            self.numa.on_walk(walk.cycles)
        cycles = l2_cycles + walk.cycles
        if walk.fault:
            self.faults += 1
            if self.obs is not None:
                self.obs.emit(
                    EVENT_TLB_MISS, vpn=vpn, level="fault", cycles=cycles,
                )
            return TranslationOutcome("fault", cycles, None, walk=walk)
        self.fill(vpn, walk.page_size)
        if self.obs is not None:
            self.obs.emit(EVENT_TLB_MISS, vpn=vpn, level="walk", cycles=cycles)
        return TranslationOutcome("walk", cycles, walk.page_size, walk.ppn, walk)

    def fill(self, vpn: int, page_size: str) -> None:
        """Install a translation into both TLB levels."""
        page_number = self._page_number(vpn, page_size)
        self.l1[page_size].fill(page_number)
        self.l2[page_size].fill(page_number)

    def invalidate(self, vpn: int, page_size: str) -> None:
        page_number = self._page_number(vpn, page_size)
        self.l1[page_size].invalidate(page_number)
        self.l2[page_size].invalidate(page_number)

    def flush(self) -> None:
        for tlb in list(self.l1.values()) + list(self.l2.values()):
            tlb.flush()

    def miss_rate(self) -> float:
        if self.translations == 0:
            return 0.0
        return self.walks / self.translations
