"""Array-backed set-associative LRU TLB state with exact batched probes.

This module is the arithmetic core of the vectorized simulation engine
(:mod:`repro.sim.fastpath`).  An :class:`ArrayTlb` mirrors one
:class:`~repro.mmu.tlb.SetAssociativeTlb` as numpy matrices — ``sets x
ways`` int64 tags and uint8 LRU ages — and resolves a whole chunk of
probes at once while reproducing the scalar TLB's hit/miss decisions
*bit-exactly*.

Why an offline computation is possible at all
---------------------------------------------
During a simulation run every access to a TLB ends with its tag at the
MRU position of that TLB (a lookup hit moves it there; every miss path
fills it there).  Under that invariant a W-way LRU set contains exactly
the W most-recently-accessed distinct tags of its set, so whether access
``i`` hits is a pure function of the probe stream: it hits iff its tag
was accessed before and the number of distinct tags accessed in the same
set since that previous access (inclusive) is at most W.  That count is
a classic LRU stack distance, which :func:`prefix_rank_counts` computes
for a whole chunk with a merge-tree of sorted prefixes — no per-access
Python, no simulation of individual evictions.

The derivation used by :meth:`ArrayTlb.batch_probe`: number the accesses
of each set consecutively (``R`` coordinates, offset per set so they are
globally unique), let ``P[i]`` be the coordinate of access ``i``'s
previous same-tag access (or ``set_base - 1`` when none) and ``Q`` the
``P`` values laid out in coordinate order.  Because ``Q[u] < u`` always,
the distinct-tag count of the window equals ``rank(R[i], P[i]) - P[i]``
where ``rank(K, X) = #{u < K : Q[u] < X}`` — one prefix-rank query per
candidate access.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two
from repro.mmu.tlb import SetAssociativeTlb

#: Age value marking an empty way in :attr:`ArrayTlb.ages`.
EMPTY_AGE = 255


def prefix_rank_counts(
    values: np.ndarray, bounds: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """For each query ``j``: ``#{u < bounds[j] : values[u] < thresholds[j]}``.

    Fully vectorized offline dominance counting.  The prefix ``[0,
    bounds[j])`` is decomposed into the canonical power-of-two blocks of
    a bottom-up merge tree; each level keeps only its own sorted blocks
    in memory (one array of ``values``' padded size), built from the
    previous level with a stable row sort — numpy's timsort detects the
    two pre-sorted halves, so each merge is linear.  Per level, all
    queries whose decomposition uses that block width are answered with
    a single ``searchsorted`` over the level flattened with a per-block
    offset stride (block ``k``'s entries live in ``[k*stride,
    (k+1)*stride)``, so one globally sorted array answers every block's
    query at once).

    ``values`` may contain entries as small as ``-1``; ``bounds`` must
    be in ``[0, len(values)]`` and ``thresholds`` in ``[-1,
    len(values))``.
    """
    n = int(values.size)
    counts = np.zeros(bounds.size, dtype=np.int64)
    if n == 0 or bounds.size == 0:
        return counts
    levels = max(0, int(n - 1).bit_length())
    size = 1 << levels
    stride = np.int64(size + 2)
    cur = np.full(size, size, dtype=np.int64)
    cur[:n] = values
    k_arr = bounds.astype(np.int64)
    x_arr = thresholds.astype(np.int64)
    block_offsets = np.arange(size, dtype=np.int64)
    for level in range(levels + 1):
        width = 1 << level
        mask = (k_arr >> level) & 1 == 1
        if mask.any():
            prefix = (k_arr[mask] >> (level + 1)) << (level + 1)
            block = prefix >> level
            flat = cur + (block_offsets >> level) * stride
            pos = np.searchsorted(flat, block * stride + x_arr[mask], side="left")
            counts[mask] += pos - prefix
        if width < size:
            cur = np.sort(cur.reshape(-1, width * 2), axis=1, kind="stable").ravel()
    return counts


class ArrayTlb:
    """Numpy mirror of a :class:`~repro.mmu.tlb.SetAssociativeTlb`.

    ``tags`` is a ``sets x ways`` int64 matrix (-1 = empty way); ``ages``
    holds each way's LRU age (0 = MRU, :data:`EMPTY_AGE` = empty).  Way
    *positions* are arbitrary — equivalence with the list implementation
    is defined on set contents in recency order (:meth:`resident`).

    The scalar methods (:meth:`lookup`, :meth:`fill`,
    :meth:`invalidate`, :meth:`flush`) replicate the list TLB's exact
    semantics and exist for unit-level equivalence testing; the
    simulation fast path only uses :meth:`batch_probe` plus
    :meth:`from_tlb` / :meth:`write_back` at the run boundaries.
    """

    def __init__(self, name: str, entries: int, ways: int, hit_cycles: int) -> None:
        if entries % ways != 0:
            raise ConfigurationError(f"{name}: {entries} entries not divisible by {ways} ways")
        sets = entries // ways
        if not is_power_of_two(sets):
            raise ConfigurationError(f"{name}: set count {sets} is not a power of two")
        if ways >= EMPTY_AGE:
            raise ConfigurationError(f"{name}: {ways} ways overflow uint8 LRU ages")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.hit_cycles = hit_cycles
        self.num_sets = sets
        self._set_mask = sets - 1
        self.tags = np.full((sets, ways), -1, dtype=np.int64)
        self.ages = np.full((sets, ways), EMPTY_AGE, dtype=np.uint8)
        self.hits = 0
        self.misses = 0

    # -- construction / synchronisation ---------------------------------

    @classmethod
    def from_tlb(cls, tlb: SetAssociativeTlb) -> "ArrayTlb":
        """Snapshot a list TLB's geometry, contents and counters."""
        arr = cls(tlb.name, tlb.entries, tlb.ways, tlb.hit_cycles)
        for set_index, entries in enumerate(tlb._sets):
            for age, page_number in enumerate(entries):
                arr.tags[set_index, age] = page_number
                arr.ages[set_index, age] = age
        arr.hits = tlb.hits
        arr.misses = tlb.misses
        return arr

    def write_back(self, tlb: SetAssociativeTlb) -> None:
        """Install this state's contents into ``tlb`` (recency order)."""
        for set_index in range(self.num_sets):
            tlb._sets[set_index] = self.resident(set_index)

    def resident(self, set_index: int) -> List[int]:
        """The set's tags in MRU-first order (the list TLB's layout)."""
        row = self.tags[set_index]
        occupied = row >= 0
        order = np.argsort(self.ages[set_index][occupied], kind="stable")
        return [int(tag) for tag in row[occupied][order]]

    # -- scalar operations (oracle-equivalent) ---------------------------

    def _find(self, set_index: int, page_number: int) -> int:
        ways = np.flatnonzero(self.tags[set_index] == page_number)
        return int(ways[0]) if ways.size else -1

    def _touch(self, set_index: int, way: int) -> None:
        ages = self.ages[set_index]
        age = ages[way]
        younger = (self.tags[set_index] >= 0) & (ages < age)
        ages[younger] += 1
        ages[way] = 0

    def lookup(self, page_number: int) -> bool:
        """Probe for ``page_number``; updates LRU order and counters."""
        set_index = page_number & self._set_mask
        way = self._find(set_index, page_number)
        if way < 0:
            self.misses += 1
            return False
        self._touch(set_index, way)
        self.hits += 1
        return True

    def fill(self, page_number: int) -> None:
        """Install ``page_number``, evicting the LRU way on conflict."""
        set_index = page_number & self._set_mask
        way = self._find(set_index, page_number)
        if way >= 0:
            self._touch(set_index, way)
            return
        row = self.tags[set_index]
        ages = self.ages[set_index]
        occupied = row >= 0
        if occupied.all():
            way = int(np.argmax(ages))
        else:
            way = int(np.argmax(~occupied))
        ages[occupied] += 1
        row[way] = page_number
        ages[way] = 0

    def invalidate(self, page_number: int) -> bool:
        """Drop ``page_number`` if present, closing the LRU age gap."""
        set_index = page_number & self._set_mask
        way = self._find(set_index, page_number)
        if way < 0:
            return False
        ages = self.ages[set_index]
        older = (self.tags[set_index] >= 0) & (ages > ages[way])
        ages[older] -= 1
        self.tags[set_index, way] = -1
        ages[way] = EMPTY_AGE
        return True

    def flush(self) -> None:
        """Drop everything."""
        self.tags.fill(-1)
        self.ages.fill(EMPTY_AGE)

    def occupancy(self) -> int:
        """Number of valid entries across all sets."""
        return int((self.tags >= 0).sum())

    def hit_rate(self) -> float:
        """Fraction of probes that hit (0.0 before any probe)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- batched probing -------------------------------------------------

    def batch_probe(self, page_numbers: np.ndarray) -> np.ndarray:
        """Resolve a probe stream's hits exactly; advance to the end state.

        Returns a bool array: element ``i`` is True iff the scalar TLB,
        fed ``page_numbers`` one at a time under the leave-at-MRU
        invariant (every access — hit or filled miss — ends at MRU),
        would hit on access ``i``.  ``tags``/``ages`` afterwards hold
        the state after the whole stream; hit/miss *counters* are not
        touched (the engine owns them — the probe cascade decides which
        TLBs an access reaches).

        The computation: a synthetic prologue (the current residents of
        every set, oldest first) is prepended so carried-over state
        participates; per-set substream coordinates and previous-
        occurrence links are built with two stable argsorts; windows no
        longer than ``ways`` are accepted outright; the rest get one
        :func:`prefix_rank_counts` query each.
        """
        pn = np.ascontiguousarray(page_numbers, dtype=np.int64)
        hits = np.zeros(pn.size, dtype=bool)
        if pn.size == 0:
            return hits
        sets = (pn & np.int64(self._set_mask)).astype(np.int32)
        occ_set, occ_way = np.nonzero(self.tags >= 0)
        if occ_set.size:
            order = np.lexsort(
                (-self.ages[occ_set, occ_way].astype(np.int64), occ_set)
            )
            pro_pn = self.tags[occ_set, occ_way][order]
            pro_set = occ_set[order].astype(np.int32)
        else:
            pro_pn = np.empty(0, dtype=np.int64)
            pro_set = np.empty(0, dtype=np.int32)
        p0 = int(pro_pn.size)
        all_pn = np.concatenate([pro_pn, pn])
        all_set = np.concatenate([pro_set, sets])
        m = int(all_pn.size)

        # Per-set substream coordinates, offset by the set's base so
        # they are globally unique and ordered within each set.  All
        # coordinate arithmetic is int32 (a chunk is far below 2**31):
        # the radix argsort, the window gathers and the merge tree are
        # memory-bound, so the narrow dtype is a real speedup.
        by_set = np.argsort(all_set, kind="stable")
        coord = np.empty(m, dtype=np.int32)
        coord[by_set] = np.arange(m, dtype=np.int32)
        set_counts = np.bincount(all_set, minlength=self.num_sets)
        set_base = np.zeros(self.num_sets, dtype=np.int32)
        np.cumsum(set_counts[:-1], out=set_base[1:])

        # Previous occurrence of the same tag (same tag => same set).
        by_tag = np.argsort(all_pn, kind="stable")
        same = all_pn[by_tag][1:] == all_pn[by_tag][:-1]
        prev = np.full(m, -1, dtype=np.int64)
        prev[by_tag[1:][same]] = by_tag[:-1][same]
        has_prev = prev >= 0
        window_start = np.where(
            has_prev, coord[np.where(has_prev, prev, 0)],
            set_base[all_set] - np.int32(1),
        ).astype(np.int32)
        ordered_starts = np.empty(m, dtype=np.int32)
        ordered_starts[coord] = window_start

        candidates = np.flatnonzero(has_prev[p0:]) + p0
        if candidates.size:
            ends = coord[candidates]
            starts = window_start[candidates]
            # Window of <= ways accesses holds <= ways distinct tags.
            short = (ends - starts) <= self.ways
            hits[candidates[short] - p0] = True
            rest = candidates[~short]
            if rest.size:
                self._resolve_windows(
                    hits, p0, ordered_starts, rest,
                    coord[rest], window_start[rest],
                )
        self._apply_end_state(all_pn, all_set, coord, by_tag, same)
        return hits

    def _resolve_windows(
        self,
        hits: np.ndarray,
        p0: int,
        ordered_starts: np.ndarray,
        rest: np.ndarray,
        ends: np.ndarray,
        starts: np.ndarray,
    ) -> None:
        """Decide ``distinct tags in [starts, ends) <= ways`` per query.

        Two-tier: a direct gather over the window's last ``C`` accesses
        settles most queries in O(C) vectorized work — exactly, when the
        window fits in ``C`` columns, and as an exact *reject* when the
        suffix alone already shows more than ``ways`` distinct tags
        (distinct counts only grow with the window).  Only windows that
        are long yet recently tag-poor — rare in practice — pay for a
        :func:`prefix_rank_counts` merge-tree query.
        """
        span = min(max(4 * self.ways, 16), 64)
        offs = np.arange(-span, 0, dtype=np.int32)[None, :]
        direct = (ends - starts) <= span
        # An access is its window's first sighting of a tag iff its own
        # previous occurrence lies before the window: distinct = count.
        if direct.any():
            # Whole window fits in ``span`` columns: count it exactly,
            # masking gather slots that fall before the window start.
            d_ends = ends[direct]
            d_lo = starts[direct][:, None]
            idx = d_ends[:, None] + offs
            cnt = (
                (ordered_starts[np.maximum(idx, 0)] < d_lo) & (idx >= d_lo)
            ).sum(axis=1, dtype=np.int32)
            hits[rest[direct] - p0] = cnt <= self.ways
        suffix = ~direct
        if suffix.any():
            # Longer window: every gather slot is in-window, so no mask.
            # More than ``ways`` distinct tags in the suffix alone proves
            # a miss; otherwise the full window needs a merge-tree query.
            s_ends = ends[suffix]
            s_lo = s_ends - np.int32(span)
            cnt = (
                ordered_starts[s_ends[:, None] + offs] < s_lo[:, None]
            ).sum(axis=1, dtype=np.int32)
            deep = cnt <= self.ways
            if deep.any():
                sel = rest[suffix][deep]
                ranks = prefix_rank_counts(
                    ordered_starts, s_ends[deep], starts[suffix][deep]
                )
                hits[sel - p0] = (ranks - starts[suffix][deep]) <= self.ways

    def _apply_end_state(
        self,
        all_pn: np.ndarray,
        all_set: np.ndarray,
        coord: np.ndarray,
        by_tag: np.ndarray,
        same: np.ndarray,
    ) -> None:
        """Set each set to its top-``ways`` tags by last access recency."""
        last_mask = np.empty(by_tag.size, dtype=bool)
        last_mask[:-1] = ~same
        last_mask[-1] = True
        last = by_tag[last_mask]
        last_sets = all_set[last]
        order = np.lexsort((-coord[last], last_sets))
        sorted_sets = last_sets[order]
        sorted_tags = all_pn[last][order]
        first_of_set = np.searchsorted(
            sorted_sets, np.arange(self.num_sets, dtype=np.int64)
        )
        rank = np.arange(sorted_sets.size, dtype=np.int64) - first_of_set[sorted_sets]
        keep = rank < self.ways
        self.tags.fill(-1)
        self.ages.fill(EMPTY_AGE)
        self.tags[sorted_sets[keep], rank[keep]] = sorted_tags[keep]
        self.ages[sorted_sets[keep], rank[keep]] = rank[keep].astype(np.uint8)
