"""Array-backed set-associative LRU TLB state with exact batched probes.

This module is the arithmetic core of the vectorized simulation engine
(:mod:`repro.sim.fastpath`).  An :class:`ArrayTlb` mirrors one
:class:`~repro.mmu.tlb.SetAssociativeTlb` as numpy matrices — ``sets x
ways`` int64 tags and uint8 LRU ages — and resolves a whole chunk of
probes at once while reproducing the scalar TLB's hit/miss decisions
*bit-exactly*.

Why an offline computation is possible at all
---------------------------------------------
During a simulation run every access to a TLB ends with its tag at the
MRU position of that TLB (a lookup hit moves it there; every miss path
fills it there).  Under that invariant a W-way LRU set contains exactly
the W most-recently-accessed distinct tags of its set, so whether access
``i`` hits is a pure function of the probe stream: it hits iff its tag
was accessed before and the number of distinct tags accessed in the same
set since that previous access (inclusive) is at most W.  That count is
a classic LRU stack distance, which :func:`prefix_rank_counts` computes
for a whole chunk with a merge-tree of sorted prefixes — no per-access
Python, no simulation of individual evictions.

The derivation used by :meth:`ArrayTlb.batch_probe`: number the accesses
of each set consecutively (``R`` coordinates, offset per set so they are
globally unique), let ``P[i]`` be the coordinate of access ``i``'s
previous same-tag access (or ``set_base - 1`` when none) and ``Q`` the
``P`` values laid out in coordinate order.  Because ``Q[u] < u`` always,
the distinct-tag count of the window equals ``rank(R[i], P[i]) - P[i]``
where ``rank(K, X) = #{u < K : Q[u] < X}`` — one prefix-rank query per
candidate access.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two
from repro.mmu.tlb import SetAssociativeTlb

#: Age value marking an empty way in :attr:`ArrayTlb.ages`.
EMPTY_AGE = 255


def stable_argsort_ids(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative int64 keys, radix-fast when narrow.

    numpy's ``kind="stable"`` sort is a radix sort only for <=16-bit
    integer dtypes; for int64 it falls back to timsort, which is ~8x
    slower on random data.  Probe streams are usually confined to a
    small page-number range (a workload footprint), so re-basing to the
    minimum and sorting uint16 halves recovers the radix path: one pass
    when the range fits 16 bits, a composed low/high two-pass radix
    (stable, so the composition sorts by the full value) when it fits
    32, and the plain int64 stable sort otherwise.
    """
    if keys.size <= 1:
        return np.arange(keys.size, dtype=np.intp)
    lo = np.int64(keys.min())
    span = np.int64(keys.max()) - lo
    if span < (1 << 16):
        return np.argsort((keys - lo).astype(np.uint16), kind="stable")
    if span < (1 << 32):
        based = (keys - lo).astype(np.uint32)
        by_low = np.argsort((based & np.uint32(0xFFFF)).astype(np.uint16),
                            kind="stable")
        by_high = np.argsort((based[by_low] >> np.uint32(16)).astype(np.uint16),
                             kind="stable")
        return by_low[by_high]
    return np.argsort(keys, kind="stable")


def prefix_rank_counts(
    values: np.ndarray, bounds: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """For each query ``j``: ``#{u < bounds[j] : values[u] < thresholds[j]}``.

    Fully vectorized offline dominance counting.  The prefix ``[0,
    bounds[j])`` is decomposed into the canonical power-of-two blocks of
    a bottom-up merge tree; each level keeps only its own sorted blocks
    in memory (one array of ``values``' padded size), built from the
    previous level with a stable row sort — numpy's timsort detects the
    two pre-sorted halves, so each merge is linear.  Per level, all
    queries whose decomposition uses that block width are answered with
    a single ``searchsorted`` over the level flattened with a per-block
    offset stride (block ``k``'s entries live in ``[k*stride,
    (k+1)*stride)``, so one globally sorted array answers every block's
    query at once).

    ``values`` may contain entries as small as ``-1``; ``bounds`` must
    be in ``[0, len(values)]`` and ``thresholds`` in ``[-1,
    len(values))``.
    """
    n = int(values.size)
    counts = np.zeros(bounds.size, dtype=np.int64)
    if n == 0 or bounds.size == 0:
        return counts
    levels = max(0, int(n - 1).bit_length())
    size = 1 << levels
    stride = np.int64(size + 2)
    cur = np.full(size, size, dtype=np.int64)
    cur[:n] = values
    k_arr = bounds.astype(np.int64)
    x_arr = thresholds.astype(np.int64)
    block_offsets = np.arange(size, dtype=np.int64)
    for level in range(levels + 1):
        width = 1 << level
        mask = (k_arr >> level) & 1 == 1
        if mask.any():
            prefix = (k_arr[mask] >> (level + 1)) << (level + 1)
            block = prefix >> level
            flat = cur + (block_offsets >> level) * stride
            pos = np.searchsorted(flat, block * stride + x_arr[mask], side="left")
            counts[mask] += pos - prefix
        if width < size:
            cur = np.sort(cur.reshape(-1, width * 2), axis=1, kind="stable").ravel()
    return counts


class ArrayTlb:
    """Numpy mirror of a :class:`~repro.mmu.tlb.SetAssociativeTlb`.

    ``tags`` is a ``sets x ways`` int64 matrix (-1 = empty way); ``ages``
    holds each way's LRU age (0 = MRU, :data:`EMPTY_AGE` = empty).  Way
    *positions* are arbitrary — equivalence with the list implementation
    is defined on set contents in recency order (:meth:`resident`).

    The scalar methods (:meth:`lookup`, :meth:`fill`,
    :meth:`invalidate`, :meth:`flush`) replicate the list TLB's exact
    semantics and exist for unit-level equivalence testing; the
    simulation fast path only uses :meth:`batch_probe` plus
    :meth:`from_tlb` / :meth:`write_back` at the run boundaries.
    """

    def __init__(self, name: str, entries: int, ways: int, hit_cycles: int) -> None:
        if entries % ways != 0:
            raise ConfigurationError(f"{name}: {entries} entries not divisible by {ways} ways")
        sets = entries // ways
        if not is_power_of_two(sets):
            raise ConfigurationError(f"{name}: set count {sets} is not a power of two")
        if ways >= EMPTY_AGE:
            raise ConfigurationError(f"{name}: {ways} ways overflow uint8 LRU ages")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.hit_cycles = hit_cycles
        self.num_sets = sets
        self._set_mask = sets - 1
        self.tags = np.full((sets, ways), -1, dtype=np.int64)
        self.ages = np.full((sets, ways), EMPTY_AGE, dtype=np.uint8)
        self.hits = 0
        self.misses = 0

    # -- construction / synchronisation ---------------------------------

    @classmethod
    def from_tlb(cls, tlb: SetAssociativeTlb) -> "ArrayTlb":
        """Snapshot a list TLB's geometry, contents and counters."""
        arr = cls.from_lists(tlb.name, tlb._sets, tlb.ways, tlb.hit_cycles)
        arr.hits = tlb.hits
        arr.misses = tlb.misses
        return arr

    @classmethod
    def from_lists(
        cls, name: str, sets: List[List[int]], ways: int, hit_cycles: int
    ) -> "ArrayTlb":
        """Build from MRU-first per-set tag lists (the list layout used by
        :class:`SetAssociativeTlb`, :class:`~repro.mem.cache.CacheLevel`
        and the PWC)."""
        arr = cls(name, len(sets) * ways, ways, hit_cycles)
        for set_index, entries in enumerate(sets):
            for age, page_number in enumerate(entries):
                arr.tags[set_index, age] = page_number
                arr.ages[set_index, age] = age
        return arr

    def write_back(self, tlb: SetAssociativeTlb) -> None:
        """Install this state's contents into ``tlb`` (recency order)."""
        for set_index in range(self.num_sets):
            tlb._sets[set_index] = self.resident(set_index)

    def write_back_lists(self) -> List[List[int]]:
        """Return the per-set MRU-first tag lists of the current state."""
        return [self.resident(i) for i in range(self.num_sets)]

    def resident(self, set_index: int) -> List[int]:
        """The set's tags in MRU-first order (the list TLB's layout)."""
        row = self.tags[set_index]
        occupied = row >= 0
        order = np.argsort(self.ages[set_index][occupied], kind="stable")
        return [int(tag) for tag in row[occupied][order]]

    # -- scalar operations (oracle-equivalent) ---------------------------

    def _find(self, set_index: int, page_number: int) -> int:
        ways = np.flatnonzero(self.tags[set_index] == page_number)
        return int(ways[0]) if ways.size else -1

    def _touch(self, set_index: int, way: int) -> None:
        ages = self.ages[set_index]
        age = ages[way]
        younger = (self.tags[set_index] >= 0) & (ages < age)
        ages[younger] += 1
        ages[way] = 0

    def lookup(self, page_number: int) -> bool:
        """Probe for ``page_number``; updates LRU order and counters."""
        set_index = page_number & self._set_mask
        way = self._find(set_index, page_number)
        if way < 0:
            self.misses += 1
            return False
        self._touch(set_index, way)
        self.hits += 1
        return True

    def fill(self, page_number: int) -> None:
        """Install ``page_number``, evicting the LRU way on conflict."""
        set_index = page_number & self._set_mask
        way = self._find(set_index, page_number)
        if way >= 0:
            self._touch(set_index, way)
            return
        row = self.tags[set_index]
        ages = self.ages[set_index]
        occupied = row >= 0
        if occupied.all():
            way = int(np.argmax(ages))
        else:
            way = int(np.argmax(~occupied))
        ages[occupied] += 1
        row[way] = page_number
        ages[way] = 0

    def invalidate(self, page_number: int) -> bool:
        """Drop ``page_number`` if present, closing the LRU age gap."""
        set_index = page_number & self._set_mask
        way = self._find(set_index, page_number)
        if way < 0:
            return False
        ages = self.ages[set_index]
        older = (self.tags[set_index] >= 0) & (ages > ages[way])
        ages[older] -= 1
        self.tags[set_index, way] = -1
        ages[way] = EMPTY_AGE
        return True

    def flush(self) -> None:
        """Drop everything."""
        self.tags.fill(-1)
        self.ages.fill(EMPTY_AGE)

    def occupancy(self) -> int:
        """Number of valid entries across all sets."""
        return int((self.tags >= 0).sum())

    def hit_rate(self) -> float:
        """Fraction of probes that hit (0.0 before any probe)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- batched probing -------------------------------------------------

    def batch_probe(self, page_numbers: np.ndarray) -> np.ndarray:
        """Resolve a probe stream's hits exactly; advance to the end state.

        Returns a bool array: element ``i`` is True iff the scalar TLB,
        fed ``page_numbers`` one at a time under the leave-at-MRU
        invariant (every access — hit or filled miss — ends at MRU),
        would hit on access ``i``.  ``tags``/``ages`` afterwards hold
        the state after the whole stream; hit/miss *counters* are not
        touched (the engine owns them — the probe cascade decides which
        TLBs an access reaches).

        The computation: a synthetic prologue (the current residents of
        every set, oldest first) is prepended so carried-over state
        participates; per-set substream coordinates and previous-
        occurrence links are built with two stable argsorts; windows no
        longer than ``ways`` are accepted outright; the rest get one
        :func:`prefix_rank_counts` query each.
        """
        pn = np.ascontiguousarray(page_numbers, dtype=np.int64)
        hits = np.zeros(pn.size, dtype=bool)
        if pn.size == 0:
            return hits
        sets = (pn & np.int64(self._set_mask)).astype(np.int32)
        occ_set, occ_way = np.nonzero(self.tags >= 0)
        if occ_set.size:
            order = np.lexsort(
                (-self.ages[occ_set, occ_way].astype(np.int64), occ_set)
            )
            pro_pn = self.tags[occ_set, occ_way][order]
            pro_set = occ_set[order].astype(np.int32)
        else:
            pro_pn = np.empty(0, dtype=np.int64)
            pro_set = np.empty(0, dtype=np.int32)
        p0 = int(pro_pn.size)
        all_pn = np.concatenate([pro_pn, pn])
        all_set = np.concatenate([pro_set, sets])
        m = int(all_pn.size)

        # Previous occurrence of the same tag (same tag => same set).
        by_tag = stable_argsort_ids(all_pn)
        same = all_pn[by_tag][1:] == all_pn[by_tag][:-1]

        # No-eviction shortcut: when every set's combined footprint
        # (carried-over residents plus the chunk's distinct tags) fits
        # its ways, nothing is ever evicted, so an access hits iff its
        # tag occurred at all before — in the prologue or earlier in
        # the chunk.  This skips the whole coordinate/window machinery
        # and covers the common warm regime of a working set that fits
        # the structure (e.g. the L2 TLB) at a fraction of the cost.
        distinct_per_set = np.bincount(
            all_set[by_tag][np.concatenate(([True], ~same))],
            minlength=self.num_sets,
        )
        if distinct_per_set.max() <= self.ways:
            has_prev = np.zeros(m, dtype=bool)
            has_prev[by_tag[1:][same]] = True
            hits[:] = has_prev[p0:]
            # _apply_end_state only compares coordinates within one
            # set, where global stream positions order identically.
            self._apply_end_state(
                all_pn, all_set, np.arange(m, dtype=np.int32), by_tag, same
            )
            return hits

        # Per-set substream coordinates, offset by the set's base so
        # they are globally unique and ordered within each set.  All
        # coordinate arithmetic is int32 (a chunk is far below 2**31):
        # the radix argsort, the window gathers and the merge tree are
        # memory-bound, so the narrow dtype is a real speedup.
        if self._set_mask < (1 << 16):
            by_set = np.argsort(all_set.astype(np.uint16), kind="stable")
        else:
            by_set = np.argsort(all_set, kind="stable")
        coord = np.empty(m, dtype=np.int32)
        coord[by_set] = np.arange(m, dtype=np.int32)
        set_counts = np.bincount(all_set, minlength=self.num_sets)
        set_base = np.zeros(self.num_sets, dtype=np.int32)
        np.cumsum(set_counts[:-1], out=set_base[1:])

        prev = np.full(m, -1, dtype=np.int32)
        prev[by_tag[1:][same]] = by_tag[:-1][same].astype(np.int32)
        has_prev = prev >= 0
        window_start = set_base[all_set] - np.int32(1)
        window_start[has_prev] = coord[prev[has_prev]]
        ordered_starts = np.empty(m, dtype=np.int32)
        ordered_starts[coord] = window_start

        candidates = np.flatnonzero(has_prev[p0:]) + p0
        if candidates.size:
            ends = coord[candidates]
            starts = window_start[candidates]
            # Window of <= ways accesses holds <= ways distinct tags.
            short = (ends - starts) <= self.ways
            hits[candidates[short] - p0] = True
            rest = candidates[~short]
            if rest.size:
                self._resolve_windows(
                    hits, p0, ordered_starts, rest,
                    coord[rest], window_start[rest],
                )
        self._apply_end_state(all_pn, all_set, coord, by_tag, same)
        return hits

    def _resolve_windows(
        self,
        hits: np.ndarray,
        p0: int,
        ordered_starts: np.ndarray,
        rest: np.ndarray,
        ends: np.ndarray,
        starts: np.ndarray,
    ) -> None:
        """Decide ``distinct tags in [starts, ends) <= ways`` per query.

        Two-tier: a direct gather over the window's last ``C`` accesses
        settles most queries in O(C) vectorized work — exactly, when the
        window fits in ``C`` columns, and as an exact *reject* when the
        suffix alone already shows more than ``ways`` distinct tags
        (distinct counts only grow with the window).  Only windows that
        are long yet recently tag-poor — rare in practice — pay for a
        :func:`prefix_rank_counts` merge-tree query.
        """
        span = min(max(self.ways + 4, 8), 64)
        m = ordered_starts.size
        direct = (ends - starts) <= span
        if direct.any():
            # Whole window fits in ``span`` columns: count its distinct
            # tags exactly with one gather, masking slots before the
            # window start (an access is its window's first sighting of
            # a tag iff its own previous occurrence lies before it).
            offs = np.arange(-span, 0, dtype=np.int32)[None, :]
            d_lo = starts[direct][:, None]
            idx = ends[direct][:, None] + offs
            cnt = (
                (ordered_starts[np.maximum(idx, 0)] < d_lo) & (idx >= d_lo)
            ).sum(axis=1, dtype=np.int32)
            hits[rest[direct] - p0] = cnt <= self.ways
        longer = ~direct
        n_long = int(np.count_nonzero(longer))
        if not n_long:
            return
        # Longer window: more than ``ways`` distinct tags in its last
        # ``span`` accesses alone proves a miss (distinct counts only
        # grow with the window).  That suffix count depends on the end
        # coordinate only, and a long window never crosses its set's
        # block, so when queries are dense it is cheapest to count every
        # coordinate with contiguous shifted compares — no gathers.
        l_ends = ends[longer]
        if n_long * span > m:
            acc = np.zeros(m, dtype=np.int16)
            thresh = np.arange(m, dtype=np.int32)
            thresh -= np.int32(span)
            for k in range(1, span + 1):
                acc[k:] += ordered_starts[:-k] < thresh[k:]
            cnt = acc[l_ends].astype(np.int32)
        else:
            offs = np.arange(-span, 0, dtype=np.int32)[None, :]
            cnt = (
                ordered_starts[l_ends[:, None] + offs]
                < (l_ends - np.int32(span))[:, None]
            ).sum(axis=1, dtype=np.int32)
        # Tag-poor suffixes — rare in practice — need a full-window query.
        deep = cnt <= self.ways
        n_deep = int(np.count_nonzero(deep))
        if not n_deep:
            return
        d_ends = l_ends[deep]
        d_starts = starts[longer][deep]
        sel = rest[longer][deep] - p0
        if n_deep <= 256 and int((d_ends - d_starts).sum()) <= (1 << 19):
            # Too little work to amortize the merge tree: count each
            # window directly with one slice scan per query.
            for q in range(n_deep):
                s, e = int(d_starts[q]), int(d_ends[q])
                distinct = int(np.count_nonzero(ordered_starts[s:e] < s))
                hits[sel[q]] = distinct <= self.ways
        else:
            ranks = prefix_rank_counts(ordered_starts, d_ends, d_starts)
            hits[sel] = (ranks - d_starts) <= self.ways

    def _apply_end_state(
        self,
        all_pn: np.ndarray,
        all_set: np.ndarray,
        coord: np.ndarray,
        by_tag: np.ndarray,
        same: np.ndarray,
    ) -> None:
        """Set each set to its top-``ways`` tags by last access recency."""
        last_mask = np.empty(by_tag.size, dtype=bool)
        last_mask[:-1] = ~same
        last_mask[-1] = True
        last = by_tag[last_mask]
        last_sets = all_set[last]
        order = np.lexsort((-coord[last], last_sets))
        sorted_sets = last_sets[order]
        sorted_tags = all_pn[last][order]
        first_of_set = np.searchsorted(
            sorted_sets, np.arange(self.num_sets, dtype=np.int64)
        )
        rank = np.arange(sorted_sets.size, dtype=np.int64) - first_of_set[sorted_sets]
        keep = rank < self.ways
        self.tags.fill(-1)
        self.ages.fill(EMPTY_AGE)
        self.tags[sorted_sets[keep], rank[keep]] = sorted_tags[keep]
        self.ages[sorted_sets[keep], rank[keep]] = rank[keep].astype(np.uint8)
