"""Set-associative TLBs with LRU replacement.

Keys are page numbers at the TLB's own page granularity (the hierarchy
converts 4KB-granular VPNs).  Latencies follow Table III; hit/miss
counters feed the simulator's statistics.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two


class SetAssociativeTlb:
    """A set-associative LRU TLB.

    ``entries`` must be divisible by ``ways``; the resulting set count
    must be a power of two (true for every Table III configuration).
    """

    def __init__(self, name: str, entries: int, ways: int, hit_cycles: int) -> None:
        if entries % ways != 0:
            raise ConfigurationError(f"{name}: {entries} entries not divisible by {ways} ways")
        sets = entries // ways
        if not is_power_of_two(sets):
            raise ConfigurationError(f"{name}: set count {sets} is not a power of two")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.hit_cycles = hit_cycles
        self.num_sets = sets
        self._set_mask = sets - 1
        self._sets: List[List[int]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _touch(entries: List[int], index: int, page_number: int) -> None:
        # Rotate the MRU prefix in place: one slice copy instead of the
        # remove()+insert() pair, which each rescan the set.
        entries[1 : index + 1] = entries[0:index]
        entries[0] = page_number

    def lookup(self, page_number: int) -> bool:
        """Probe for ``page_number``; updates LRU and counters."""
        entries = self._sets[page_number & self._set_mask]
        try:
            index = entries.index(page_number)
        except ValueError:
            self.misses += 1
            return False
        if index:
            self._touch(entries, index, page_number)
        self.hits += 1
        return True

    def fill(self, page_number: int) -> None:
        """Install ``page_number``, evicting LRU on conflict."""
        entries = self._sets[page_number & self._set_mask]
        try:
            index = entries.index(page_number)
        except ValueError:
            entries.insert(0, page_number)
            if len(entries) > self.ways:
                entries.pop()
            return
        if index:
            self._touch(entries, index, page_number)

    def invalidate(self, page_number: int) -> bool:
        """Drop ``page_number`` if present (TLB shootdown)."""
        entries = self._sets[page_number & self._set_mask]
        try:
            del entries[entries.index(page_number)]
        except ValueError:
            return False
        return True

    def flush(self) -> None:
        """Drop everything (full shootdown / context switch without ASID)."""
        for entries in self._sets:
            entries.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)
