"""Batched page walks for the vectorized engine.

The scalar walkers resolve one miss at a time: compute the cache lines
the walk touches, charge each line to the cache hierarchy, account the
walk.  This module batches that work across the misses of a chunk while
staying *bit-identical* to the scalar walkers:

* **Plan** (:meth:`HptWalkBatch.plan` / :meth:`RadixWalkBatch.plan`) runs
  per miss, in global trace order, and performs every operation whose
  *state* is inherently sequential but tiny: CWC lookups/fills, PWC
  lookups/fills, cuckoo key lookups (``stats.lookups``), the ME-HPT L2P
  accounting, and the walk counter.  These touch a few dozen entries and
  are cheap; replaying them on the real objects guarantees the exact
  hit/miss sequences of the scalar walker.
* **Seal** (:meth:`~HptWalkBatch.seal_segment`) converts a *fault-
  separated segment* — the planned walks since the last state-mutating
  access — into cache-line addresses with vectorized gathers:
  :meth:`~repro.hashing.clustered.ClusteredHashedPageTable.probe_line_addrs_batch`
  over the cuckoo ways (grouped by candidate-size set), or radix node
  base addresses memoized per (depth, VPN-prefix).  Sealing must happen
  before the next fault because faults move cuckoo geometry (resizes,
  kicks) and grow the radix tree; the *sealed* line addresses stay valid
  forever (radix nodes are never moved or removed).
* **Flush** (:meth:`~HptWalkBatch.flush`) feeds the accumulated line
  stream — still in global per-walk order — through :class:`CacheBatch`,
  an :class:`~repro.mmu.tlb_array.ArrayTlb` mirror of the cache
  hierarchy, and reduces per-line latencies to per-walk cycles
  (``max`` per probe group for the parallel HPT probes, ``sum`` for the
  sequential radix levels).  Faults never touch the cache hierarchy, so
  cache probing can be deferred across fault boundaries and amortized
  over a whole chunk.

Accesses that mutate simulator state — demand faults, and everything
they trigger (cuckoo kicks, resizes, CWT updates, allocation) — are not
batched: the engine replays them through the real fault handler in
global trace order between segments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import CACHE_LINE
from repro.ecpt.walker import EcptWalker, _PROBE_ORDER
from repro.mem.cache import CacheHierarchy
from repro.mmu.tlb_array import ArrayTlb
from repro.radix.table import FANOUT, LEVEL_BITS, PAGE_SIZE_BITS, ENTRIES_PER_LINE
from repro.radix.walker import RadixWalker

#: Below this many pending walks a segment is sealed with the scalar
#: per-walk line computation — numpy call overhead would dominate.
MIN_SEAL_BATCH = 8

#: Cache-probe streams at or below this length are replayed per line on
#: the array mirror instead of paying ``batch_probe``'s stream setup.
SMALL_PROBE_STREAM = 48

_LINE_SHIFT = ENTRIES_PER_LINE.bit_length() - 1


class WalkFlush:
    """Per-walk results of one :meth:`flush`, in global walk order."""

    __slots__ = ("locals_", "walk_ids", "vpns", "faults", "cycles", "accesses")

    def __init__(self, locals_, walk_ids, vpns, faults, cycles, accesses):
        self.locals_ = locals_      # np.int64 chunk-local indices
        self.walk_ids = walk_ids    # List[int]
        self.vpns = vpns            # List[int]
        self.faults = faults        # List[bool]
        self.cycles = cycles        # np.int64 per-walk walk cycles
        self.accesses = accesses    # np.int64 per-walk memory accesses


class CacheBatch:
    """Array mirror of a :class:`~repro.mem.cache.CacheHierarchy`.

    Each :class:`~repro.mem.cache.CacheLevel` keeps MRU-first tag lists
    — exactly the layout :meth:`ArrayTlb.from_lists` mirrors — and every
    ``access`` leaves its line at MRU (hit-touch or miss-fill), which is
    the invariant :meth:`ArrayTlb.batch_probe` needs.  The cascade is
    replicated level by level: only the previous level's misses reach
    the next, and whatever misses the last level is a DRAM access.

    Counters are tracked as deltas and installed, together with the
    mirrored contents, by :meth:`write_back` at the end of the engine
    run (nothing reads cache state mid-run: the walkers are the only
    cache clients and the batched engine replaces their accesses).
    """

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self.hierarchy = hierarchy
        self.arrays = [
            ArrayTlb.from_lists(level.name, level._sets, level.ways, level.hit_cycles)
            for level in hierarchy.levels
        ]
        self._hits = [0] * len(self.arrays)
        self._misses = [0] * len(self.arrays)
        self._dram = 0

    def probe(self, lines: np.ndarray) -> np.ndarray:
        """Per-line round-trip cycles for ``lines``, in stream order.

        Bit-identical to calling ``hierarchy.access`` per line: same
        hit/miss decisions, same LRU evolution, same counters (applied
        at :meth:`write_back`).
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        cycles = np.full(lines.size, self.hierarchy.dram_cycles, dtype=np.int64)
        idx = np.arange(lines.size, dtype=np.int64)
        stream = lines
        for li, arr in enumerate(self.arrays):
            if stream.size == 0:
                break
            if stream.size <= SMALL_PROBE_STREAM:
                hit = np.empty(stream.size, dtype=bool)
                for j, line in enumerate(stream.tolist()):
                    h = arr.lookup(line)
                    if not h:
                        arr.fill(line)
                    hit[j] = h
            else:
                hit = arr.batch_probe(stream)
            n_hit = int(np.count_nonzero(hit))
            self._hits[li] += n_hit
            self._misses[li] += int(stream.size) - n_hit
            cycles[idx[hit]] = arr.hit_cycles
            idx = idx[~hit]
            stream = stream[~hit]
        self._on_dram(stream, idx, cycles)
        return cycles

    def _on_dram(
        self, lines: np.ndarray, idx: np.ndarray, cycles: np.ndarray
    ) -> None:
        """Account the lines that missed every level (a DRAM access each).

        ``lines`` are the missing line addresses, ``idx`` their positions
        in the probed stream, ``cycles`` the full per-stream cycle array
        (already set to ``dram_cycles`` at those positions).  Subclasses
        may adjust ``cycles[idx]`` in place — the NUMA variant charges the
        remote-DRAM delta here.
        """
        self._dram += int(idx.size)

    def write_back(self) -> None:
        """Install mirrored contents and counter deltas into the real levels."""
        for arr, level, hits, misses in zip(
            self.arrays, self.hierarchy.levels, self._hits, self._misses
        ):
            level._sets = arr.write_back_lists()
            level.hits += hits
            level.misses += misses
        self.hierarchy.dram_accesses += self._dram
        self._hits = [0] * len(self.arrays)
        self._misses = [0] * len(self.arrays)
        self._dram = 0


class NumaCacheBatch(CacheBatch):
    """NUMA-aware :class:`CacheBatch` over a shared datacenter hierarchy.

    Mirrors :meth:`~repro.sim.datacenter.topology.NumaCacheHierarchy.access`
    bit-identically: every line that misses all levels resolves its
    home socket and, when homed on a socket other than the machine's
    ``active_socket`` (and not replicated everywhere), pays the
    remote-DRAM delta.  Instead of one ``home_of`` bisect per line,
    homes are resolved in batch with a ``searchsorted`` over a numpy
    interval snapshot of the :class:`LineHomeMap`, rebuilt only when
    the map's epoch moves (register / set_home / unregister).

    ``local/remote_dram_accesses`` and ``remote_delta_cycles`` are
    accumulated as deltas and installed into the machine at
    :meth:`write_back` — nothing reads them mid-run (results and
    metric snapshots are taken after the final write-back).

    Requires an integer ``remote_dram_delta`` (per-line latencies stay
    int64 and batched sums stay exact); the engine selection layer
    falls back to the scalar loop otherwise.
    """

    def __init__(self, hierarchy) -> None:
        super().__init__(hierarchy)
        machine = hierarchy.machine
        if not float(machine.remote_dram_delta).is_integer():
            raise ConfigurationError(
                "NumaCacheBatch needs an integral remote_dram_delta"
            )
        self.machine = machine
        self._delta = int(machine.remote_dram_delta)
        self._local_dram = 0
        self._remote_dram = 0
        self._snapshot_epoch = -1
        self._bases = self._ends = self._sockets = None
        #: Diagnostics surfaced as ``numa.batch_*`` metrics.
        self.batch_dram_probes = 0
        self.snapshot_rebuilds = 0

    def _remote_mask(self, lines: np.ndarray) -> np.ndarray:
        """Which of ``lines`` are homed on a non-active, non-replicated
        socket — exactly ``home_of``'s bisect, vectorized."""
        from repro.sim.datacenter.topology import ALL_SOCKETS

        home_map = self.machine.home_map
        if self._snapshot_epoch != home_map.epoch:
            self._bases, self._ends, self._sockets = home_map.as_arrays()
            self._snapshot_epoch = home_map.epoch
            self.snapshot_rebuilds += 1
        if self._bases.size == 0:
            return np.zeros(lines.size, dtype=bool)
        pos = np.searchsorted(self._bases, lines, side="right") - 1
        clipped = np.maximum(pos, 0)
        within = (pos >= 0) & (lines < self._ends[clipped])
        homes = self._sockets[clipped]
        return (
            within
            & (homes != np.int64(ALL_SOCKETS))
            & (homes != np.int64(self.machine.active_socket))
        )

    def _on_dram(
        self, lines: np.ndarray, idx: np.ndarray, cycles: np.ndarray
    ) -> None:
        n = int(idx.size)
        self._dram += n
        self.batch_dram_probes += n
        if n == 0:
            return
        remote = self._remote_mask(lines)
        n_remote = int(np.count_nonzero(remote))
        self._local_dram += n - n_remote
        self._remote_dram += n_remote
        if n_remote:
            cycles[idx[remote]] += np.int64(self._delta)

    def write_back(self) -> None:
        """Install cache state plus the machine's NUMA DRAM counters."""
        super().write_back()
        machine = self.machine
        machine.local_dram_accesses += self._local_dram
        machine.remote_dram_accesses += self._remote_dram
        # Scalar accumulation adds the (integer-valued) float delta once
        # per remote miss; a single product lands on the same float.
        machine.remote_delta_cycles += float(self._delta * self._remote_dram)
        self._local_dram = 0
        self._remote_dram = 0


class HptWalkBatch:
    """Batched walks for :class:`~repro.ecpt.walker.EcptWalker` (and the
    ME-HPT subclass): CWC resolution and key lookups happen at plan
    time on the real objects; way line addresses are gathered per
    candidate-size group; per-walk latency is ``cwc + max(cwt lines) +
    max(probe lines) + extra`` exactly as in the scalar walker."""

    def __init__(self, walker: EcptWalker, caches: CacheBatch, sizes: List[str]) -> None:
        self.walker = walker
        self.caches = caches
        self.sizes = sizes
        self.tables = walker.tables
        self._segment: List[tuple] = []
        self._reset_pending()

    def _reset_pending(self) -> None:
        self._flat: List[np.ndarray] = []
        self._flat_len = 0
        self._locals: List[int] = []
        self._walk_ids: List[int] = []
        self._vpns: List[int] = []
        self._faults: List[bool] = []
        self._extras: List[int] = []
        self._cwt_start: List[int] = []
        self._n_cwt: List[int] = []
        self._probe_start: List[int] = []
        self._n_probe: List[int] = []

    def plan(self, local: int, vpn: int, code: int) -> bool:
        """Phase A for one miss: the walk's sequential state updates.

        Returns True when the access will demand-fault (no candidate
        table maps the page), in which case the caller must seal the
        segment and run the real fault handler before planning further.
        """
        walker = self.walker
        walk_id = walker.walks
        walker.walks += 1
        candidate_sizes, cwt_lines = walker._resolve_candidates(vpn)
        if cwt_lines:
            walker.cwt_memory_reads += len(cwt_lines)
        hit_size = None
        extra = 0
        if candidate_sizes:
            extra = walker._extra_probe_cycles(vpn, candidate_sizes)
            for page_size in _PROBE_ORDER:
                if page_size not in candidate_sizes:
                    continue
                if self.tables.tables[page_size].translate(vpn) is not None:
                    hit_size = page_size
                    break
        fault = hit_size is None
        assert fault or hit_size == self.sizes[code], (
            "static page-size prediction diverged from the batched walker"
        )
        self._segment.append(
            (local, walk_id, vpn, tuple(candidate_sizes), cwt_lines, extra, fault)
        )
        return fault

    def seal_segment(self) -> None:
        """Resolve the pending segment's walks to cache-line addresses.

        Must run before the next state-mutating access: line addresses
        depend on the live cuckoo geometry (rehash pointers, way sizes),
        which the fault path may change.
        """
        seg = self._segment
        if not seg:
            return
        self._segment = []
        if len(seg) < MIN_SEAL_BATCH:
            for local, walk_id, vpn, cands, cwt_lines, extra, fault in seg:
                probe_lines: List[int] = []
                for page_size in cands:
                    probe_lines.extend(
                        self.tables.tables[page_size].probe_line_addrs(vpn)
                    )
                self._append_walk(
                    local, walk_id, vpn, fault, extra, cwt_lines,
                    np.asarray(probe_lines, dtype=np.int64),
                )
            return
        k = len(seg)
        groups: Dict[tuple, List[int]] = {}
        for i, rec in enumerate(seg):
            groups.setdefault(rec[3], []).append(i)
        n_cwt = np.array([len(rec[4]) for rec in seg], dtype=np.int64)
        width = np.zeros(k, dtype=np.int64)
        rows_by_group: Dict[tuple, np.ndarray] = {}
        for cands, idxs in groups.items():
            if not cands:
                continue
            vpns_g = np.array([seg[i][2] for i in idxs], dtype=np.int64)
            mats = [
                self.tables.tables[s].probe_line_addrs_batch(vpns_g) for s in cands
            ]
            rows = mats[0] if len(mats) == 1 else np.hstack(mats)
            rows_by_group[cands] = rows
            width[idxs] = rows.shape[1]
        offs = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(n_cwt + width, out=offs[1:])
        flat = np.empty(int(offs[-1]), dtype=np.int64)
        for i, rec in enumerate(seg):
            if rec[4]:
                flat[int(offs[i]): int(offs[i]) + len(rec[4])] = rec[4]
        for cands, idxs in groups.items():
            rows = rows_by_group.get(cands)
            if rows is None:
                continue
            sel = np.asarray(idxs, dtype=np.int64)
            starts = offs[sel] + n_cwt[sel]
            pos = starts[:, None] + np.arange(rows.shape[1], dtype=np.int64)[None, :]
            flat[pos] = rows
        base = self._flat_len
        for i, rec in enumerate(seg):
            local, walk_id, vpn, _cands, _cwt, extra, fault = rec
            self._locals.append(local)
            self._walk_ids.append(walk_id)
            self._vpns.append(vpn)
            self._faults.append(fault)
            self._extras.append(extra)
            self._cwt_start.append(base + int(offs[i]))
            self._n_cwt.append(int(n_cwt[i]))
            self._probe_start.append(base + int(offs[i]) + int(n_cwt[i]))
            self._n_probe.append(int(width[i]))
        self._flat.append(flat)
        self._flat_len += int(flat.size)

    def _append_walk(self, local, walk_id, vpn, fault, extra, cwt_lines, probe_arr):
        base = self._flat_len
        n_cwt = len(cwt_lines)
        self._locals.append(local)
        self._walk_ids.append(walk_id)
        self._vpns.append(vpn)
        self._faults.append(fault)
        self._extras.append(extra)
        self._cwt_start.append(base)
        self._n_cwt.append(n_cwt)
        self._probe_start.append(base + n_cwt)
        self._n_probe.append(int(probe_arr.size))
        if n_cwt:
            self._flat.append(np.asarray(cwt_lines, dtype=np.int64))
        if probe_arr.size:
            self._flat.append(probe_arr)
        self._flat_len += n_cwt + int(probe_arr.size)

    def flush(self) -> Optional[WalkFlush]:
        """Probe all pending line streams; return per-walk results."""
        self.seal_segment()
        if not self._locals:
            return None
        walker = self.walker
        k = len(self._locals)
        if self._flat_len:
            flat = self._flat[0] if len(self._flat) == 1 else np.concatenate(self._flat)
            lat = self.caches.probe(flat)
        else:
            lat = np.empty(0, dtype=np.int64)
        lat_pad = np.concatenate([lat, np.zeros(1, dtype=np.int64)])
        bounds = np.empty(2 * k, dtype=np.int64)
        bounds[0::2] = self._cwt_start
        bounds[1::2] = self._probe_start
        reduced = np.maximum.reduceat(lat_pad, bounds)
        n_cwt = np.asarray(self._n_cwt, dtype=np.int64)
        n_probe = np.asarray(self._n_probe, dtype=np.int64)
        # reduceat yields the element at the boundary for empty slices
        # (and the pad sentinel for a trailing one); mask those to the
        # scalar walker's access_parallel([]) == 0.
        cwt_max = np.where(n_cwt > 0, reduced[0::2], 0)
        probe_max = np.where(n_probe > 0, reduced[1::2], 0)
        cycles = (
            np.int64(walker.cwc_cycles) + cwt_max + probe_max
            + np.asarray(self._extras, dtype=np.int64)
        )
        accesses = n_cwt + n_probe
        result = self._finish(cycles, accesses)
        return result

    def _finish(self, cycles: np.ndarray, accesses: np.ndarray) -> WalkFlush:
        walker = self.walker
        walker.total_cycles += int(cycles.sum())
        walker.total_accesses += int(accesses.sum())
        if walker.obs is not None and walker.walk_latency is not None:
            bins: Dict[int, int] = {}
            for value in cycles.tolist():
                bins[value] = bins.get(value, 0) + 1
            walker.walk_latency.observe_bins(bins)
        result = WalkFlush(
            np.asarray(self._locals, dtype=np.int64),
            self._walk_ids, self._vpns, self._faults, cycles, accesses,
        )
        self._reset_pending()
        return result


class RadixWalkBatch(HptWalkBatch):
    """Batched walks for :class:`~repro.radix.walker.RadixWalker`.

    PWC lookups/fills happen at plan time on the real caches; node line
    addresses for non-faulting walks are gathered from per-(depth,
    prefix) memos of the tree (nodes are only ever created, so a
    resolved base address stays valid); faulting walks take the real
    ``table.walk`` since their path depth depends on live tree shape.
    Per-walk latency is ``pwc + sum(per-level lines)`` — the radix walk
    is sequential, unlike the HPT's parallel probes.
    """

    def __init__(self, walker: RadixWalker, caches: CacheBatch, sizes: List[str]) -> None:
        self.walker = walker
        self.caches = caches
        self.sizes = sizes
        self.table = walker.table
        self.levels = self.table.levels
        self._page_shift = [PAGE_SIZE_BITS[s] for s in sizes]
        self._depth_for_code = [self.table._leaf_depth(s) for s in sizes]
        self._seen: List[set] = [set() for _ in sizes]
        self._memo: List[Dict[int, int]] = [dict() for _ in range(self.levels)]
        self._memo[0][0] = self.table.root.addr // CACHE_LINE
        self._segment: List[tuple] = []
        self._reset_pending()

    def _reset_pending(self) -> None:
        self._flat: List[np.ndarray] = []
        self._flat_len = 0
        self._locals: List[int] = []
        self._walk_ids: List[int] = []
        self._vpns: List[int] = []
        self._faults: List[bool] = []
        self._starts: List[int] = []
        self._lens: List[int] = []

    def plan(self, local: int, vpn: int, code: int) -> bool:
        """Phase A for one radix miss.

        Fault prediction: page tables start empty and pages are only
        ever mapped by the fault handler, so an access faults iff it is
        the first touch of its (page size, page number) — tracked in
        per-size seen-sets.  Every prior fault's mapped size was
        asserted against the static prediction, so a predicted
        non-faulting walk's depth is exactly ``_leaf_depth(predicted
        size)``.
        """
        walker = self.walker
        walk_id = walker.walks
        walker.walks += 1
        key = vpn >> self._page_shift[code]
        seen = self._seen[code]
        fault = key not in seen
        fault_lines = None
        if fault:
            seen.add(key)
            leaf, fault_lines = self.table.walk(vpn)
            assert leaf is None, "fault prediction diverged: page already mapped"
            depth = len(fault_lines)
        else:
            depth = self._depth_for_code[code]
        start = walker.pwc.lookup(vpn, max_depth=depth - 1)
        walker.pwc.fill(vpn, depth - 1)
        self._segment.append((local, walk_id, vpn, depth, start, fault_lines))
        return fault

    def _resolve(self, depth: int, prefix: int) -> int:
        node = self.table.node_for_prefix(prefix, depth)
        assert node is not None, "radix node prediction diverged from the table"
        base = node.addr // CACHE_LINE
        self._memo[depth][prefix] = base
        return base

    def _lines_for(self, vpn: int, depth: int, start: int) -> List[int]:
        out: List[int] = []
        for d in range(start, depth):
            memo = self._memo[d]
            prefix = vpn >> ((self.levels - d) * LEVEL_BITS)
            base = memo.get(prefix)
            if base is None:
                base = self._resolve(d, prefix)
            index = (vpn >> ((self.levels - 1 - d) * LEVEL_BITS)) & (FANOUT - 1)
            out.append(base + (index >> _LINE_SHIFT))
        return out

    def seal_segment(self) -> None:
        seg = self._segment
        if not seg:
            return
        self._segment = []
        k = len(seg)
        lens = [rec[3] - rec[4] for rec in seg]
        if k < MIN_SEAL_BATCH:
            for rec, length in zip(seg, lens):
                local, walk_id, vpn, depth, start, fault_lines = rec
                if fault_lines is not None:
                    lines = fault_lines[start:]
                else:
                    lines = self._lines_for(vpn, depth, start)
                self._register(local, walk_id, vpn, fault_lines is not None, length)
                self._flat.append(np.asarray(lines, dtype=np.int64))
                self._flat_len += length
            return
        offs = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(np.asarray(lens, dtype=np.int64), out=offs[1:])
        flat = np.empty(int(offs[-1]), dtype=np.int64)
        vpns = np.array([rec[2] for rec in seg], dtype=np.int64)
        depth_arr = np.array([rec[3] for rec in seg], dtype=np.int64)
        start_arr = np.array([rec[4] for rec in seg], dtype=np.int64)
        predicted = np.array([rec[5] is None for rec in seg], dtype=bool)
        for i, rec in enumerate(seg):
            if rec[5] is not None:
                flat[int(offs[i]): int(offs[i + 1])] = rec[5][rec[4]:]
        for d in range(int(depth_arr.max())):
            sel = np.flatnonzero(predicted & (start_arr <= d) & (d < depth_arr))
            if sel.size == 0:
                continue
            memo = self._memo[d]
            prefixes = vpns[sel] >> np.int64((self.levels - d) * LEVEL_BITS)
            uniq, inverse = np.unique(prefixes, return_inverse=True)
            bases = np.empty(uniq.size, dtype=np.int64)
            for u, prefix in enumerate(uniq.tolist()):
                base = memo.get(prefix)
                if base is None:
                    base = self._resolve(d, prefix)
                bases[u] = base
            index = (
                vpns[sel] >> np.int64((self.levels - 1 - d) * LEVEL_BITS)
            ) & np.int64(FANOUT - 1)
            flat[offs[sel] + (d - start_arr[sel])] = bases[inverse] + (
                index >> np.int64(_LINE_SHIFT)
            )
        for i, rec in enumerate(seg):
            self._register(
                rec[0], rec[1], rec[2], rec[5] is not None,
                int(lens[i]), self._flat_len + int(offs[i]),
            )
        self._flat.append(flat)
        self._flat_len += int(flat.size)

    def _register(
        self, local, walk_id, vpn, fault, length, start_abs=None
    ) -> None:
        self._locals.append(local)
        self._walk_ids.append(walk_id)
        self._vpns.append(vpn)
        self._faults.append(fault)
        self._starts.append(self._flat_len if start_abs is None else start_abs)
        self._lens.append(length)

    def flush(self) -> Optional[WalkFlush]:
        self.seal_segment()
        if not self._locals:
            return None
        flat = self._flat[0] if len(self._flat) == 1 else np.concatenate(self._flat)
        lat = self.caches.probe(flat)
        lat_pad = np.concatenate([lat, np.zeros(1, dtype=np.int64)])
        sums = np.add.reduceat(lat_pad, np.asarray(self._starts, dtype=np.int64))
        cycles = np.int64(self.walker.pwc_cycles) + sums
        accesses = np.asarray(self._lens, dtype=np.int64)
        return self._finish(cycles, accesses)


def make_walk_batch(system, sizes: List[str], caches: Optional[CacheBatch] = None):
    """Build the walk batcher for ``system``, or None when the walker or
    cache geometry has no batched implementation (the engine then falls
    back to the scalar walker per miss — still exact, just slower).

    ``caches`` lets callers share one cache mirror across several
    batchers — the datacenter quantum engine passes a single
    :class:`NumaCacheBatch` over the machine-wide hierarchy so the
    shared LLC state evolves in global quantum order."""
    walker = system.walker
    if caches is None:
        try:
            caches = CacheBatch(walker.caches)
        except (AttributeError, ConfigurationError):
            return None
    if isinstance(walker, EcptWalker):
        return HptWalkBatch(walker, caches, sizes)
    if isinstance(walker, RadixWalker):
        return RadixWalkBatch(walker, caches, sizes)
    return None
