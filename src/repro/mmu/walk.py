"""Shared types for page walkers.

Each page-table organization provides a walker object with a
``walk(vpn) -> WalkResult`` method; the TLB hierarchy and the simulator
are agnostic to which organization is underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class WalkResult:
    """Outcome of one page walk.

    ``ppn`` / ``page_size`` are None when the page is unmapped (a page
    fault follows).  ``cycles`` is the full walk latency including MMU
    cache lookups; ``memory_accesses`` counts references that reached the
    cache hierarchy.
    """

    ppn: Optional[int]
    page_size: Optional[str]
    cycles: int
    memory_accesses: int

    @property
    def fault(self) -> bool:
        return self.ppn is None
