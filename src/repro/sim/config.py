"""Simulation configuration: the Table III machine, scaled assembly.

:class:`SimulationConfig` carries every knob of the modelled server;
:meth:`SimulationConfig.build` assembles a :class:`SimulatedSystem` for a
workload — page tables, walker, TLB hierarchy, and the kernel address
space — for any of the three organizations.

Footprint scaling (``scale``): the workload footprint, the initial HPT
way (128 entries in Table III), and the chunk ladder are all divided by
the same power of two.  Because every structure is a power of two and the
resize/transition thresholds are ratios, the scaled system performs the
*same sequence* of doublings, chunk transitions and L2P reservations as
the full-scale one, with every size exactly ``scale`` times smaller —
reported sizes are multiplied back.  Upsize counts, chunk counts and L2P
entry usage are scale-invariant outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import CACHE_LINE, KB, MB, is_power_of_two
from repro.core.chunks import DEFAULT_CHUNK_SIZES, ChunkLadder
from repro.core.mehpt import MeHptPageTables
from repro.core.walker import MeHptWalker
from repro.ecpt.tables import EcptPageTables
from repro.faults.log import DegradationLog
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryPolicy
from repro.ecpt.walker import EcptWalker
from repro.kernel.address_space import AddressSpace
from repro.kernel.thp import ThpPolicy
from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.allocator import CostModelAllocator
from repro.mem.cache import CacheHierarchy, CacheLevel
from repro.mmu.hierarchy import TlbHierarchy
from repro.obs import Observability, ObservabilityConfig, build_observability
from repro.obs.collectors import register_system_metrics
from repro.radix.pwc import PageWalkCaches
from repro.radix.table import RadixPageTable
from repro.radix.walker import RadixWalker
from repro.workloads.base import Workload

ORGANIZATIONS = ("radix", "ecpt", "mehpt")

#: Valid values for :attr:`SimulationConfig.engine`.
ENGINES = ("auto", "scalar", "vectorized")


@dataclass
class SimulationConfig:
    """All machine and methodology parameters (defaults = Table III)."""

    organization: str = "mehpt"
    thp_enabled: bool = False
    fmfi: float = 0.7
    scale: int = 16
    seed: int = 12345

    # Processor/memory model.
    base_cycles_per_access: float = 6.0
    dram_cycles: int = 200
    l2_cache_kb: int = 512
    l3_cache_mb: int = 16
    #: Share of cache capacity page-table lines hold onto while competing
    #: with the data stream of memory-intensive workloads.
    cache_pt_fraction: float = 0.03
    #: Scale the cache model's effective capacity with the footprint so a
    #: 1/scale run preserves the full-scale cache-residency relationships
    #: of the page-table structures (see module docstring).
    scale_cache_with_footprint: bool = True

    # TLBs / PWCs / CWCs (geometry defaults live in their modules).
    pwc_entries_per_level: int = 32
    pmd_cwc_entries: int = 16
    pud_cwc_entries: int = 2
    cwc_cycles: int = 4
    l2p_cycles: int = 4

    # HPT parameters.
    ways: int = 3
    initial_way_slots: int = 128
    upsize_threshold: float = 0.6
    downsize_threshold: float = 0.2
    rehashes_per_insert: int = 2
    allow_downsize: bool = False  # the paper observes no downsizes
    chunk_sizes: Tuple[int, ...] = DEFAULT_CHUNK_SIZES
    max_chunks_per_way: int = 64
    enable_inplace: bool = True
    enable_perway: bool = True

    # Radix parameters.
    radix_levels: int = 4

    # Kernel model.
    fault_overhead_cycles: float = 1200.0
    reinsert_cycles: float = 120.0
    #: OS + memory-traffic cycles per page-table entry physically moved by
    #: gradual rehashing (a line read + write + bookkeeping).  In-place
    #: resizing halves these moves (Section VII-E3).
    rehash_entry_cycles: float = 150.0
    charge_data_alloc: bool = False  # identical across organizations

    # Fault injection / robustness (repro.faults).
    #: Fault plan template; each build() replicates it (fresh counters) so
    #: repeated builds see identical, deterministic fault sequences.
    fault_plan: Optional[FaultPlan] = None
    #: Retry-with-backoff parameters; None = DEFAULT_RECOVERY when a plan
    #: is armed.
    recovery: Optional[RecoveryPolicy] = None
    #: Run check_invariants() on the page tables every N simulated
    #: accesses / populated pages (0 = disabled).
    invariant_check_every: int = 0

    # Observability (repro.obs).  None = fully disabled: no registry, no
    # tracer, and every instrumentation site short-circuits on a None
    # check — results are bit-identical to a build without the layer.
    obs: Optional[ObservabilityConfig] = None

    # Trace-driven input (repro.traces).  When set, ``build()`` may be
    # called without a workload: the ``.vpt`` file at this path is loaded
    # as a TraceWorkload and replayed instead of a synthetic generator.
    trace_file: Optional[str] = None

    # Simulation engine (repro.sim.fastpath).  "auto" picks the
    # vectorized batched engine; "scalar"/"vectorized" force one.
    # Results are bit-identical either way — including traced event
    # streams, which the vectorized engine synthesizes in per-access
    # order — so this knob is deliberately absent from the sweep
    # engine's cache keys.
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.obs is not None:
            self.obs.validate()
        if self.organization not in ORGANIZATIONS:
            raise ConfigurationError(
                f"organization {self.organization!r} not in {ORGANIZATIONS}",
                field="organization", value=self.organization,
            )
        if not is_power_of_two(self.scale):
            raise ConfigurationError(
                f"scale {self.scale} must be a power of two",
                field="scale", value=self.scale,
            )
        if not 0.0 <= self.fmfi < 1.0:
            raise ConfigurationError(
                f"fmfi {self.fmfi} must be in [0, 1) — 1.0 would mean no "
                f"free memory at any granularity",
                field="fmfi", value=self.fmfi,
            )
        if self.invariant_check_every < 0:
            raise ConfigurationError(
                f"invariant_check_every {self.invariant_check_every} must be >= 0",
                field="invariant_check_every", value=self.invariant_check_every,
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine {self.engine!r} not in {ENGINES}",
                field="engine", value=self.engine,
            )

    def tracing_enabled(self) -> bool:
        """Whether an event trace sink (file or ring buffer) is configured."""
        return self.obs is not None and (
            self.obs.trace_path is not None or self.obs.trace_buffer is not None
        )

    def resolve_engine(self) -> str:
        """The engine the simulator will actually run: scalar or vectorized.

        ``auto`` selects the vectorized engine.  Tracing no longer forces
        the scalar loop: the batched engine synthesizes the per-access
        event stream from its batch results, byte-identically.
        """
        return "scalar" if self.engine == "scalar" else "vectorized"

    # -- scaled parameters -------------------------------------------------

    def scaled_initial_slots(self) -> int:
        return max(4, self.initial_way_slots // self.scale)

    def scaled_ladder(self) -> ChunkLadder:
        sizes = []
        for size in self.chunk_sizes:
            scaled = max(CACHE_LINE, size // self.scale)
            if scaled not in sizes:
                sizes.append(scaled)
        return ChunkLadder(sizes, max_chunks_per_way=self.max_chunks_per_way)

    # -- assembly ------------------------------------------------------------

    def build_cache_hierarchy(self) -> CacheHierarchy:
        divisor = self.scale if self.scale_cache_with_footprint else 1
        fraction = self.cache_pt_fraction / divisor
        return CacheHierarchy(
            levels=[
                CacheLevel("L2", self.l2_cache_kb * KB, 8, 16,
                           effective_fraction=fraction),
                CacheLevel("L3", self.l3_cache_mb * MB, 16, 56,
                           effective_fraction=fraction),
            ],
            dram_cycles=self.dram_cycles,
        )

    def load_trace_workload(self):
        """The :class:`~repro.traces.workload.TraceWorkload` for ``trace_file``."""
        if self.trace_file is None:
            raise ConfigurationError(
                "no workload given and no trace_file configured",
                field="trace_file", value=None,
            )
        from repro.traces.workload import TraceWorkload

        return TraceWorkload(self.trace_file)

    def build(
        self,
        workload: Optional[Workload] = None,
        allocator=None,
        caches=None,
        numa=None,
    ) -> "SimulatedSystem":
        """Assemble page tables, walker, TLBs, and kernel for ``workload``.

        With no workload argument the configured ``trace_file`` is loaded
        and replayed (the trace-driven path).  The datacenter model passes
        ``allocator`` (a shared-pool allocator replacing the per-system
        :class:`CostModelAllocator`), ``caches`` (a NUMA-aware hierarchy
        shared across tenants), and ``numa`` (the per-walk socket
        accounting hook threaded into :class:`TlbHierarchy`).
        """
        if workload is None:
            workload = self.load_trace_workload()
        cost_model = AllocationCostModel()
        if caches is None:
            caches = self.build_cache_hierarchy()
        obs = build_observability(self.obs)
        # Trace-backed workloads report reader/writer activity into the
        # run's registry; synthetic workloads have no such hook.
        bind_obs = getattr(workload, "bind_observability", None)
        if bind_obs is not None and obs is not None:
            bind_obs(obs)
        degradation = DegradationLog(obs=obs)
        # Replicate the plan so each build starts from fresh counters and
        # the fault sequence is identical across repeated builds.
        plan = self.fault_plan.replicate() if self.fault_plan is not None else None
        if allocator is None:
            allocator = CostModelAllocator(
                cost_model,
                fmfi=self.fmfi,
                scale=self.scale,
                fault_plan=plan,
                recovery=self.recovery,
                degradation=degradation,
            )

        if self.organization == "radix":
            tables = RadixPageTable(levels=self.radix_levels)
            walker = RadixWalker(
                tables,
                caches,
                pwc=PageWalkCaches(
                    levels=self.radix_levels,
                    entries_per_level=self.pwc_entries_per_level,
                ),
                obs=obs,
            )
        elif self.organization == "ecpt":
            tables = EcptPageTables(
                allocator,
                rng=None,
                ways=self.ways,
                initial_slots=self.scaled_initial_slots(),
                hash_seed=self.seed,
                upsize_threshold=self.upsize_threshold,
                downsize_threshold=self.downsize_threshold,
                rehashes_per_insert=self.rehashes_per_insert,
                allow_downsize=self.allow_downsize,
                fault_plan=plan,
                degradation=degradation,
                obs=obs,
            )
            walker = EcptWalker(
                tables, caches,
                pmd_cwc_entries=self.pmd_cwc_entries,
                pud_cwc_entries=self.pud_cwc_entries,
                cwc_cycles=self.cwc_cycles,
                obs=obs,
            )
        else:
            tables = MeHptPageTables(
                allocator,
                rng=None,
                ways=self.ways,
                initial_slots=self.scaled_initial_slots(),
                hash_seed=self.seed,
                upsize_threshold=self.upsize_threshold,
                downsize_threshold=self.downsize_threshold,
                rehashes_per_insert=self.rehashes_per_insert,
                allow_downsize=self.allow_downsize,
                chunk_ladder=self.scaled_ladder(),
                enable_inplace=self.enable_inplace,
                enable_perway=self.enable_perway,
                fault_plan=plan,
                degradation=degradation,
                obs=obs,
            )
            walker = MeHptWalker(
                tables, caches,
                pmd_cwc_entries=self.pmd_cwc_entries,
                pud_cwc_entries=self.pud_cwc_entries,
                cwc_cycles=self.cwc_cycles,
                l2p_cycles=self.l2p_cycles,
                obs=obs,
            )

        thp = ThpPolicy(
            enabled=self.thp_enabled,
            coverage=workload.spec.thp_coverage,
            seed=self.seed,
        )
        aspace = AddressSpace(
            tables,
            thp=thp,
            cost_model=cost_model,
            fmfi=self.fmfi,
            fault_overhead_cycles=self.fault_overhead_cycles,
            reinsert_cycles=self.reinsert_cycles,
            charge_data_alloc=self.charge_data_alloc,
            obs=obs,
        )
        for start, pages, name in workload.vma_layout():
            aspace.add_vma(start, pages, name)
        tlb = TlbHierarchy(walker, obs=obs, numa=numa)
        system = SimulatedSystem(
            self, workload, tables, walker, tlb, aspace, allocator, degradation,
            obs,
        )
        if obs is not None and obs.registry is not None:
            register_system_metrics(obs.registry, system)
        return system


@dataclass
class SimulatedSystem:
    """Everything one simulation run needs, assembled for one workload."""

    config: SimulationConfig
    workload: Workload
    page_tables: object
    walker: object
    tlb: TlbHierarchy
    address_space: AddressSpace
    allocator: CostModelAllocator
    #: Degradation events recorded by the allocator, resize engines and
    #: fault hooks during this run.
    degradation: DegradationLog = field(default_factory=DegradationLog)
    #: The run's observability layer (None when disabled); owns the
    #: metrics registry, the trace sink, and the sim-cycle clock.
    obs: Optional[Observability] = None


def table3_parameters() -> Dict[str, str]:
    """The architectural parameters of Table III, for printing/inspection."""
    return {
        "Processor": "8 OoO cores, 256-entry ROB, 2GHz",
        "L1 caches": "32KB, 8-way, 2 cycles RT",
        "L2 cache": "512KB, 8-way, 16 cycles RT",
        "L3 cache": "2MB per core, 16-way, 56 avg cycles RT",
        "L1 DTLB (4KB)": "64 entries, 4-way, 2 cycles RT",
        "L1 DTLB (2MB)": "32 entries, 4-way, 2 cycles RT",
        "L1 DTLB (1GB)": "4 entries, 2 cycles RT",
        "L2 DTLB (4KB)": "1024 entries, 8-way, 12 cycles RT",
        "L2 DTLB (2MB)": "1024 entries, 8-way, 12 cycles RT",
        "L2 DTLB (1GB)": "16 entries, 4-way, 12 cycles RT",
        "PWC (radix)": "3 levels, 32 entries/level, 4 cycles RT",
        "Memory latency": "200 cycles RT average",
        "Initial HPT": "128 entries x 3 ways per page size",
        "PMD-CWC / PUD-CWC": "16 entries / 2 entries, 4 cycles RT",
        "Hash functions": "CRC, 2-cycle latency",
        "L2P table": "32 entries x 3 ways x 3 page sizes (1.16KB)",
        "Shift + L2P + mask": "4-cycle latency",
        "Chunk sizes": "8KB, 1MB used; 8MB, 64MB unused",
        "HPT occupancy thresholds": "0.6 upsize, 0.2 downsize",
        "Memory fragmentation": "0.7 FMFI",
    }
