"""The vectorized batched translation engine (the simulation fast path).

:func:`run_vectorized` replays a trace through the TLB hierarchy in
numpy chunks instead of one Python int at a time.  Per chunk it decides
— exactly, via :class:`~repro.mmu.tlb_array.ArrayTlb`'s offline LRU
computation — which accesses hit L1 (zero cycles), which hit L2, and
which are full misses; only the full misses (typically ≪1% of accesses)
drop into the existing scalar code, where the page walker, demand
faults, warmup snapshots and invariant checks run exactly as in the
scalar engine.  Results are **bit-identical** to
:class:`~repro.sim.simulator.TranslationSimulator`'s scalar loop: every
``PerformanceResult`` field, every TLB counter, and the abort/warmup
accounting (property-tested in ``tests/test_sim_fastpath.py``).

What makes exactness possible:

* Every completed access leaves its tag at the MRU position of the TLBs
  of its resolved page size, so per-chunk hit levels are a pure function
  of the VPN stream (see :mod:`repro.mmu.tlb_array`).
* THP page-size decisions are stateless and per-2MB-region consistent
  (:meth:`~repro.kernel.thp.ThpPolicy.page_size_for` plus the VMA clip
  in :meth:`~repro.kernel.address_space.AddressSpace.handle_fault`), so
  each access's resolved size is computed up front by
  :class:`StaticThpSizer` and the chunk splits into independent per-size
  probe streams.
* Cycle totals are integer-valued floats below 2**53, so batched sums
  equal the scalar engine's one-by-one accumulation exactly.

Full misses are processed *in global trace order* through the real
walker and fault handler, so cache-hierarchy state, cuckoo kicks,
resizes and aborts are exact.  Event tracing needs per-access ordering
the batched engine cannot provide, so ``SimulationConfig.resolve_engine``
never selects this path while a trace sink is configured.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ContiguousAllocationError
from repro.faults.log import EVENT_ABORT
from repro.hashing.clustered import PAGE_SHIFT
from repro.hashing.hashes import mix64_array
from repro.kernel.address_space import AddressSpace
from repro.kernel.thp import PAGES_PER_2M
from repro.mmu.tlb_array import ArrayTlb
from repro.sim.simulator import (
    ABORT_ERRORS,
    LoopOutcome,
    check_system_invariants,
)

#: Default trace events per engine chunk.
DEFAULT_CHUNK_VALUES = 65536

_REGION_SHIFT = PAGES_PER_2M.bit_length() - 1


class StaticThpSizer:
    """Vectorized, exact replica of the kernel's page-size decision.

    ``ThpPolicy.page_size_for`` is a pure function of the 2MB region
    number, and ``AddressSpace.handle_fault`` clips 2MB mappings to 4KB
    unless some VMA fully covers the region — also a pure region-level
    predicate (VMAs never change mid-run and cannot overlap).  So every
    access's resolved page size is known before simulation, which is
    what lets the engine split a chunk into per-size probe streams.
    """

    def __init__(self, aspace: AddressSpace, probe_sizes: List[str]) -> None:
        thp = aspace.thp
        self.enabled = thp.enabled and thp.coverage > 0.0 and "2M" in probe_sizes
        self.seed = thp.seed
        self.coverage = thp.coverage
        self.code_2m = probe_sizes.index("2M") if self.enabled else 0
        self._vmas = [(vma.start_vpn, vma.end_vpn) for vma in aspace.vmas]

    def codes(self, chunk: np.ndarray) -> np.ndarray:
        """Per-access probe-stream codes (indices into the probe order)."""
        codes = np.zeros(chunk.size, dtype=np.int64)
        if not self.enabled:
            return codes
        regions = chunk >> np.int64(_REGION_SHIFT)
        uniq, inverse = np.unique(regions, return_inverse=True)
        # The policy's deterministic per-region coin, bit-exactly.
        draw = (mix64_array(uniq, self.seed) >> np.uint64(11)).astype(
            np.float64
        ) / float(1 << 53)
        backed = draw < self.coverage
        base = uniq << np.int64(_REGION_SHIFT)
        covered = np.zeros(uniq.size, dtype=bool)
        for start, end in self._vmas:
            covered |= (base >= start) & (base + PAGES_PER_2M <= end)
        codes[(backed & covered)[inverse]] = self.code_2m
        return codes


def _apply_counters(
    tlb, sizes: List[str], level: np.ndarray, stream: np.ndarray
) -> None:
    """Add one (possibly partial) chunk's TLB counters, exactly.

    ``level`` holds each access's resolution (0 = L1 hit, 1 = L2 hit,
    2 = walk, 3 = fault) and ``stream`` its page-size probe code.  The
    scalar probe cascade determines which TLBs each access touched: an
    access resolving at level L in stream s probes every earlier-order
    TLB of its resolving level (misses) and all TLBs of lower levels.
    """
    nsizes = len(sizes)
    joint = np.bincount(
        level.astype(np.int64) * nsizes + stream, minlength=4 * nsizes
    ).reshape(4, nsizes)
    per_level = joint.sum(axis=1)
    n = int(level.size)
    ge1 = n - int(per_level[0])
    ge2 = int(per_level[2] + per_level[3])
    for order, size in enumerate(sizes):
        l1 = tlb.l1[size]
        l2 = tlb.l2[size]
        l1.hits += int(joint[0, order])
        l1.misses += int(joint[0, order + 1:].sum()) + ge1
        l2.hits += int(joint[1, order])
        l2.misses += int(joint[1, order + 1:].sum()) + ge2
    tlb.translations += n
    tlb.l1_hits += int(per_level[0])
    tlb.l2_hits += int(per_level[1])
    tlb.walks += ge2
    tlb.faults += int(per_level[3])


def run_vectorized(
    system,
    workload,
    trace_length: int,
    warmup_events: int,
    chunk_values: Optional[int] = None,
) -> LoopOutcome:
    """Run the trace through ``system`` with the batched engine.

    Mirrors the scalar loop of
    :meth:`~repro.sim.simulator.TranslationSimulator.run` exactly —
    counters, cycles, warmup snapshot, abort accounting and invariant
    checks — and returns the same :class:`LoopOutcome`.
    """
    tlb = system.tlb
    aspace = system.address_space
    config = system.config
    sizes = list(tlb.l1.keys())
    sizer = StaticThpSizer(aspace, sizes)
    shifts = [PAGE_SHIFT[size] for size in sizes]
    l2_hit_cycles = [tlb.l2[size].hit_cycles for size in sizes]
    l2_probe_cycles = tlb.l2_miss_probe_cycles
    l1_arr: Dict[str, ArrayTlb] = {
        size: ArrayTlb.from_tlb(t) for size, t in tlb.l1.items()
    }
    l2_arr: Dict[str, ArrayTlb] = {
        size: ArrayTlb.from_tlb(t) for size, t in tlb.l2.items()
    }
    walk_fn = system.walker.walk
    fault_fn = aspace.handle_fault
    check_every = config.invariant_check_every
    next_check = check_every
    boundary = warmup_events - 1  # global index completing the warmup
    warm_taken = warmup_events == 0

    outcome = LoopOutcome()
    base = 0
    for chunk in workload.trace_chunks(
        trace_length, chunk_values or DEFAULT_CHUNK_VALUES
    ):
        n = int(chunk.size)
        before_cycles = outcome.total_cycles
        before = (tlb.l1_hits, tlb.l2_hits, tlb.walks, tlb.faults)
        stream = sizer.codes(chunk)
        level = np.zeros(n, dtype=np.int8)
        cycles = np.zeros(n, dtype=np.int64)
        for code, size in enumerate(sizes):
            if sizer.enabled:
                idx = np.flatnonzero(stream == code)
            elif code == 0:
                idx = np.arange(n, dtype=np.int64)  # all accesses are 4K
            else:
                break
            if idx.size == 0:
                continue
            numbers = chunk[idx] >> np.int64(shifts[code])
            l1_hit = l1_arr[size].batch_probe(numbers)
            l1_miss = idx[~l1_hit]
            l2_hit = l2_arr[size].batch_probe(numbers[~l1_hit])
            hit2 = l1_miss[l2_hit]
            level[hit2] = 1
            cycles[hit2] = l2_hit_cycles[code]
            level[l1_miss[~l2_hit]] = 2

        def _warm_snapshot(prefix: int) -> None:
            """Record the warmup boundary from this chunk's prefix."""
            outcome.warm_cycles = before_cycles + float(cycles[:prefix].sum())
            outcome.warm_l1 = before[0] + int((level[:prefix] == 0).sum())
            outcome.warm_l2 = before[1] + int((level[:prefix] == 1).sum())
            outcome.warm_walks = before[2] + int((level[:prefix] >= 2).sum())
            outcome.warm_faults = before[3] + int((level[:prefix] == 3).sum())

        aborted_at = -1
        try:
            for local in np.flatnonzero(level >= 2).tolist():
                index = base + local
                while next_check and next_check < index:
                    check_system_invariants(system, next_check)
                    next_check += check_every
                aborted_at = local
                vpn = int(chunk[local])
                walk = walk_fn(vpn)
                cycles[local] = l2_probe_cycles + walk.cycles
                if walk.fault:
                    level[local] = 3
                    fault = fault_fn(vpn)
                    assert fault.page_size == sizes[int(stream[local])], (
                        "static page-size prediction diverged from the kernel"
                    )
                elif walk.page_size is not None:
                    assert walk.page_size == sizes[int(stream[local])], (
                        "static page-size prediction diverged from the walker"
                    )
                if next_check and next_check == index:
                    check_system_invariants(system, index)
                    next_check += check_every
            while next_check and next_check <= base + n - 1:
                check_system_invariants(system, next_check)
                next_check += check_every
        except ABORT_ERRORS as exc:
            outcome.failed = True
            outcome.reason = str(exc)
            if not isinstance(exc, ContiguousAllocationError):
                system.degradation.record(
                    EVENT_ABORT, "trace", error=type(exc).__name__,
                )
            done = aborted_at + 1  # aborting access counted, not completed
            outcome.events_done = base + aborted_at
            _apply_counters(tlb, sizes, level[:done], stream[:done])
            outcome.total_cycles += float(cycles[:done].sum())
            if not warm_taken and boundary < base + aborted_at:
                _warm_snapshot(boundary - base + 1)
                warm_taken = True
            return outcome

        _apply_counters(tlb, sizes, level, stream)
        outcome.total_cycles += float(cycles.sum())
        if not warm_taken and boundary < base + n:
            _warm_snapshot(boundary - base + 1)
            warm_taken = True
        base += n
        outcome.events_done = base

    # Clean completion: the array states are the TLB contents after the
    # last access — install them so post-run inspection (and equivalence
    # tests) see exactly what the scalar engine leaves behind.  After an
    # abort the arrays hold full-chunk (future) state, so they are
    # deliberately not written back; aborted runs' TLB *contents* are
    # unspecified, their counters exact.
    for size in sizes:
        l1_arr[size].write_back(tlb.l1[size])
        l2_arr[size].write_back(tlb.l2[size])
    return outcome
