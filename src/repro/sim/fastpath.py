"""The vectorized batched translation engine (the simulation fast path).

:func:`run_vectorized` replays a trace through the TLB hierarchy in
numpy chunks instead of one Python int at a time.  Per chunk it decides
— exactly, via :class:`~repro.mmu.tlb_array.ArrayTlb`'s offline LRU
computation — which accesses hit L1 (zero cycles), which hit L2, and
which are full misses.  The misses are then *batch-walked*
(:mod:`repro.mmu.walk_batch`): per fault-separated segment the walkers'
cache-line streams are resolved with vectorized gathers (cuckoo-way
addresses, radix node memos) and probed against array mirrors of the
cache hierarchy; only accesses that mutate simulator state — demand
faults, with their kicks, resizes and allocations — run through the
real fault handler, in global trace order.  Results are
**bit-identical** to
:class:`~repro.sim.simulator.TranslationSimulator`'s scalar loop: every
``PerformanceResult`` field, every TLB/cache/walker counter, metrics
snapshots, abort/warmup accounting, and — when a trace sink is attached
— the traced event stream byte-for-byte (property-tested in
``tests/test_sim_fastpath.py`` and ``tests/test_obs_trace_equivalence.py``).

What makes exactness possible:

* Every completed access leaves its tag at the MRU position of the TLBs
  of its resolved page size, so per-chunk hit levels are a pure function
  of the VPN stream (see :mod:`repro.mmu.tlb_array`).  The same
  invariant holds for cache-hierarchy lines, which is what lets the
  batched walker mirror the caches as arrays.
* THP page-size decisions are stateless and per-2MB-region consistent
  (:meth:`~repro.kernel.thp.ThpPolicy.page_size_for` plus the VMA clip
  in :meth:`~repro.kernel.address_space.AddressSpace.handle_fault`), so
  each access's resolved size is computed up front by
  :class:`StaticThpSizer` and the chunk splits into independent per-size
  probe streams.
* Faults are the only operations that mutate page tables, cuckoo
  geometry or CWT contents, so between faults the walk batcher can
  resolve line addresses for many walks at once; the cache hierarchy is
  touched by nothing but walks, so its probes can be deferred across
  fault boundaries and batched per chunk.
* Cycle totals are integer-valued floats below 2**53, so batched sums
  equal the scalar engine's one-by-one accumulation exactly.

Event tracing composes with this engine: the scalar engine's per-access
events (``walk_start``/``walk_end``/``tlb_miss``/``measure_start``) are
synthesized from the batch results in per-access order with the exact
scalar clock values, while fault-path events (``fault_serviced``,
kicks, resizes, chunk transitions) are emitted live by the real fault
machinery.  The synthesized emit-call sequence equals the scalar
engine's, so per-kind sampling counters, sequence numbers and therefore
the JSONL/ring-buffer output are byte-identical.

Ordering contract for invariant checks (satellite of PR 7): the scalar
engine checks invariants after every ``invariant_check_every``-th
access; this engine performs the same *set* of checks against the same
page-table states — faults are the only mutations and checks are
caught up before each fault and at chunk end — so any check that fails
in one engine fails in the other with the same ``progress`` value.  The
only divergence is *when* a failing check raises relative to hit-only
accesses between two faults: the vectorized engine may execute those
accesses (and, when tracing, emit later walks' events) before the
deferred check fires.  Counters and traces of *completed* runs are
unaffected; only the partial state observed after an uncaught
``SimulationError`` differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ContiguousAllocationError
from repro.faults.log import EVENT_ABORT
from repro.hashing.clustered import PAGE_SHIFT
from repro.hashing.hashes import mix64_array
from repro.kernel.address_space import AddressSpace
from repro.kernel.thp import PAGES_PER_2M, REGION_SHIFT
from repro.mmu.tlb_array import ArrayTlb
from repro.mmu.walk_batch import make_walk_batch
from repro.obs.trace import (
    EVENT_MEASURE_START,
    EVENT_TLB_MISS,
    EVENT_WALK_END,
    EVENT_WALK_START,
)
from repro.sim.simulator import (
    ABORT_ERRORS,
    LoopOutcome,
    check_system_invariants,
)

#: Default trace events per engine chunk.
DEFAULT_CHUNK_VALUES = 65536

_REGION_SHIFT = REGION_SHIFT


class StaticThpSizer:
    """Vectorized, exact replica of the kernel's page-size decision.

    ``ThpPolicy.page_size_for`` is a pure function of the 2MB region
    number, and ``AddressSpace.handle_fault`` clips 2MB mappings to 4KB
    unless some VMA fully covers the region — also a pure region-level
    predicate (VMAs never change mid-run and cannot overlap).  So every
    access's resolved page size is known before simulation, which is
    what lets the engine split a chunk into per-size probe streams.
    """

    def __init__(self, aspace: AddressSpace, probe_sizes: List[str]) -> None:
        thp = aspace.thp
        self.enabled = thp.enabled and thp.coverage > 0.0 and "2M" in probe_sizes
        self.seed = thp.seed
        self.coverage = thp.coverage
        self.code_2m = probe_sizes.index("2M") if self.enabled else 0
        self._vmas = [(vma.start_vpn, vma.end_vpn) for vma in aspace.vmas]

    def codes(self, chunk: np.ndarray) -> np.ndarray:
        """Per-access probe-stream codes (indices into the probe order)."""
        codes = np.zeros(chunk.size, dtype=np.int64)
        if not self.enabled:
            return codes
        regions = chunk >> np.int64(_REGION_SHIFT)
        uniq, inverse = np.unique(regions, return_inverse=True)
        # The policy's deterministic per-region coin, bit-exactly.
        draw = (mix64_array(uniq, self.seed) >> np.uint64(11)).astype(
            np.float64
        ) / float(1 << 53)
        backed = draw < self.coverage
        base = uniq << np.int64(_REGION_SHIFT)
        covered = np.zeros(uniq.size, dtype=bool)
        for start, end in self._vmas:
            covered |= (base >= start) & (base + PAGES_PER_2M <= end)
        codes[(backed & covered)[inverse]] = self.code_2m
        return codes


def _apply_counters(
    tlb, sizes: List[str], level: np.ndarray, stream: np.ndarray
) -> None:
    """Add one (possibly partial) chunk's TLB counters, exactly.

    ``level`` holds each access's resolution (0 = L1 hit, 1 = L2 hit,
    2 = walk, 3 = fault) and ``stream`` its page-size probe code.  The
    scalar probe cascade determines which TLBs each access touched: an
    access resolving at level L in stream s probes every earlier-order
    TLB of its resolving level (misses) and all TLBs of lower levels.
    """
    nsizes = len(sizes)
    joint = np.bincount(
        level.astype(np.int64) * nsizes + stream, minlength=4 * nsizes
    ).reshape(4, nsizes)
    per_level = joint.sum(axis=1)
    n = int(level.size)
    ge1 = n - int(per_level[0])
    ge2 = int(per_level[2] + per_level[3])
    for order, size in enumerate(sizes):
        l1 = tlb.l1[size]
        l2 = tlb.l2[size]
        l1.hits += int(joint[0, order])
        l1.misses += int(joint[0, order + 1:].sum()) + ge1
        l2.hits += int(joint[1, order])
        l2.misses += int(joint[1, order + 1:].sum()) + ge2
    tlb.translations += n
    tlb.l1_hits += int(per_level[0])
    tlb.l2_hits += int(per_level[1])
    tlb.walks += ge2
    tlb.faults += int(per_level[3])


def run_vectorized(
    system,
    workload,
    trace_length: int,
    warmup_events: int,
    chunk_values: Optional[int] = None,
) -> LoopOutcome:
    """Run the trace through ``system`` with the batched engine.

    Mirrors the scalar loop of
    :meth:`~repro.sim.simulator.TranslationSimulator.run` exactly —
    counters, cycles, warmup snapshot, abort accounting, invariant
    checks and traced events — and returns the same :class:`LoopOutcome`.
    """
    tlb = system.tlb
    aspace = system.address_space
    config = system.config
    obs = system.obs
    tracer_on = obs is not None and obs.tracer is not None
    sizes = list(tlb.l1.keys())
    sizer = StaticThpSizer(aspace, sizes)
    shifts = [PAGE_SHIFT[size] for size in sizes]
    l2_hit_cycles = [tlb.l2[size].hit_cycles for size in sizes]
    l2_probe_cycles = tlb.l2_miss_probe_cycles
    l1_arr: Dict[str, ArrayTlb] = {
        size: ArrayTlb.from_tlb(t) for size, t in tlb.l1.items()
    }
    l2_arr: Dict[str, ArrayTlb] = {
        size: ArrayTlb.from_tlb(t) for size, t in tlb.l2.items()
    }
    batcher = make_walk_batch(system, sizes)
    walk_fn = system.walker.walk
    fault_fn = aspace.handle_fault
    check_every = config.invariant_check_every
    next_check = check_every
    boundary = warmup_events - 1  # global index completing the warmup
    warm_taken = warmup_events == 0
    # When warmup_events == 0 the simulator emits measure_start itself.
    measure_emitted = (not tracer_on) or warmup_events == 0

    outcome = LoopOutcome()
    base = 0
    for chunk in workload.trace_chunks(
        trace_length, chunk_values or DEFAULT_CHUNK_VALUES
    ):
        n = int(chunk.size)
        before_cycles = outcome.total_cycles
        before = (tlb.l1_hits, tlb.l2_hits, tlb.walks, tlb.faults)
        stream = sizer.codes(chunk)
        level = np.zeros(n, dtype=np.int8)
        cycles = np.zeros(n, dtype=np.int64)
        for code, size in enumerate(sizes):
            if sizer.enabled:
                idx = np.flatnonzero(stream == code)
            elif code == 0:
                idx = np.arange(n, dtype=np.int64)  # all accesses are 4K
            else:
                break
            if idx.size == 0:
                continue
            numbers = chunk[idx] >> np.int64(shifts[code])
            l1_hit = l1_arr[size].batch_probe(numbers)
            l1_miss = idx[~l1_hit]
            l2_hit = l2_arr[size].batch_probe(numbers[~l1_hit])
            hit2 = l1_miss[l2_hit]
            level[hit2] = 1
            cycles[hit2] = l2_hit_cycles[code]
            level[l1_miss[~l2_hit]] = 2

        def _warm_snapshot(prefix: int) -> None:
            """Record the warmup boundary from this chunk's prefix."""
            outcome.warm_cycles = before_cycles + float(cycles[:prefix].sum())
            outcome.warm_l1 = before[0] + int((level[:prefix] == 0).sum())
            outcome.warm_l2 = before[1] + int((level[:prefix] == 1).sum())
            outcome.warm_walks = before[2] + int((level[:prefix] >= 2).sum())
            outcome.warm_faults = before[3] + int((level[:prefix] == 3).sum())

        # -- traced-mode clock / event synthesis -------------------------
        # Events of access i carry the clock at the access's start: the
        # cumulative translation cycles through access i-1, exactly as
        # the scalar loop stamps them.  ``emit_state`` tracks how far
        # the per-access cycle prefix sum has been folded in; cycles of
        # batched walks are final before any event referencing them is
        # emitted (the flush scatters them first).
        boundary_local = boundary - base
        emit_state = [0, 0.0]  # [accesses folded into the sum, their sum]

        def _clock_before(local: int) -> int:
            if local > emit_state[0]:
                emit_state[1] += float(cycles[emit_state[0]:local].sum())
                emit_state[0] = local
            return int(before_cycles + emit_state[1])

        def _measure_before(local: int) -> None:
            # The scalar loop emits measure_start right after the
            # warmup-completing access; replicate it before emitting any
            # later access's events (hit-only accesses emit nothing, so
            # this preserves the exact event sequence).
            nonlocal measure_emitted
            if not measure_emitted and boundary_local < local:
                obs.advance_clock(_clock_before(boundary_local + 1))
                obs.emit(EVENT_MEASURE_START, event=warmup_events)
                measure_emitted = True

        def _emit_walk(local, walk_id, vpn, walk_cycles, accesses, is_fault):
            _measure_before(local)
            obs.advance_clock(_clock_before(local))
            obs.emit(EVENT_WALK_START, walk=walk_id, vpn=vpn)
            obs.emit(
                EVENT_WALK_END, walk=walk_id, cycles=walk_cycles,
                accesses=accesses,
            )
            obs.emit(
                EVENT_TLB_MISS, vpn=vpn,
                level="fault" if is_fault else "walk",
                cycles=l2_probe_cycles + walk_cycles,
            )

        def _drain() -> None:
            """Probe pending batched walks; scatter cycles, emit events."""
            if batcher is None:
                return
            result = batcher.flush()
            if result is None:
                return
            cycles[result.locals_] = l2_probe_cycles + result.cycles
            if tracer_on:
                for j in range(result.locals_.size):
                    _emit_walk(
                        int(result.locals_[j]), result.walk_ids[j],
                        result.vpns[j], int(result.cycles[j]),
                        int(result.accesses[j]), result.faults[j],
                    )

        aborted_at = -1
        try:
            for local in np.flatnonzero(level >= 2).tolist():
                index = base + local
                while next_check and next_check < index:
                    check_system_invariants(system, next_check)
                    next_check += check_every
                aborted_at = local
                vpn = int(chunk[local])
                code = int(stream[local])
                if batcher is not None:
                    if batcher.plan(local, vpn, code):
                        # State-mutating access: seal the segment's line
                        # addresses against the pre-fault geometry, then
                        # run the real fault handler in trace order.
                        # Cache probing itself only needs to happen now
                        # when events are being synthesized.
                        batcher.seal_segment()
                        if tracer_on:
                            _drain()
                        level[local] = 3
                        fault = fault_fn(vpn)
                        assert fault.page_size == sizes[code], (
                            "static page-size prediction diverged from the kernel"
                        )
                else:
                    # No batched implementation for this walker/cache
                    # geometry: scalar walker per miss, still exact.
                    if tracer_on:
                        _measure_before(local)
                        obs.advance_clock(_clock_before(local))
                    walk = walk_fn(vpn)
                    cycles[local] = l2_probe_cycles + walk.cycles
                    if tracer_on:
                        obs.emit(
                            EVENT_TLB_MISS, vpn=vpn,
                            level="fault" if walk.fault else "walk",
                            cycles=int(l2_probe_cycles + walk.cycles),
                        )
                    if walk.fault:
                        level[local] = 3
                        fault = fault_fn(vpn)
                        assert fault.page_size == sizes[code], (
                            "static page-size prediction diverged from the kernel"
                        )
                    elif walk.page_size is not None:
                        assert walk.page_size == sizes[code], (
                            "static page-size prediction diverged from the walker"
                        )
                if next_check and next_check == index:
                    check_system_invariants(system, index)
                    next_check += check_every
            _drain()
            while next_check and next_check <= base + n - 1:
                check_system_invariants(system, next_check)
                next_check += check_every
        except ABORT_ERRORS as exc:
            outcome.failed = True
            outcome.reason = str(exc)
            if not isinstance(exc, ContiguousAllocationError):
                system.degradation.record(
                    EVENT_ABORT, "trace", error=type(exc).__name__,
                )
            # Finalize the pending batched walks (all planned at or
            # before the aborting access) so their cycles and cache
            # counters are exact.  In traced mode this is a no-op: the
            # drain already ran before the fault handler raised.
            _drain()
            done = aborted_at + 1  # aborting access counted, not completed
            outcome.events_done = base + aborted_at
            _apply_counters(tlb, sizes, level[:done], stream[:done])
            outcome.total_cycles += float(cycles[:done].sum())
            # The aborting access never *completes* (the scalar loop's
            # events_done stops just before it), so the warmup window is
            # only closed when the boundary access lies strictly before
            # it — `boundary < base + aborted_at` is events_done-based,
            # intentionally one tighter than the clean path's
            # `boundary < base + n`.  An abort exactly at the boundary
            # leaves the run inside warmup, as in the scalar engine.
            if not warm_taken and boundary < base + aborted_at:
                _warm_snapshot(boundary - base + 1)
                warm_taken = True
            if batcher is not None:
                batcher.caches.write_back()
            return outcome

        _apply_counters(tlb, sizes, level, stream)
        outcome.total_cycles += float(cycles.sum())
        if not warm_taken and boundary < base + n:
            _warm_snapshot(boundary - base + 1)
            warm_taken = True
        if tracer_on:
            # measure_start for a warmup boundary inside a hit-only
            # chunk tail, then the scalar loop's end-of-access clock.
            _measure_before(n)
            obs.advance_clock(int(outcome.total_cycles))
        base += n
        outcome.events_done = base

    # Clean completion: the array states are the TLB contents after the
    # last access — install them so post-run inspection (and equivalence
    # tests) see exactly what the scalar engine leaves behind.  After an
    # abort the arrays hold full-chunk (future) state, so they are
    # deliberately not written back; aborted runs' TLB *contents* are
    # unspecified, their counters exact.  (The cache mirrors *are*
    # written back on abort: they only ever advance walk by walk.)
    for size in sizes:
        l1_arr[size].write_back(tlb.l1[size])
        l2_arr[size].write_back(tlb.l2[size])
    if batcher is not None:
        batcher.caches.write_back()
    return outcome
