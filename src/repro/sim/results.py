"""Result containers and the differential performance model.

**Memory results** report full-scale-equivalent sizes: the allocator
already accounts at ``scale x`` (see
:class:`~repro.mem.allocator.CostModelAllocator`), and table totals are
multiplied back by the scale.

**Performance model** (Figure 9).  The simulator measures translation
behaviour on a trace; the per-access cycle cost of a configuration is

    cpa = base + translation_cycles / trace_accesses
               + differential_os_cycles / fullscale_accesses

where ``differential_os_cycles`` are the OS costs that *differ* between
page-table organizations: page-table allocation (charged from the
measured fragmentation curve at full-scale-equivalent sizes), cuckoo
re-insertion work, and exposed L2P latency.  Costs identical across
organizations (data-page allocation, generic fault overhead) are
reported but excluded from the model, since including them only shifts
every configuration equally (they cancel in the speedup ratio's
numerator and denominator to first order, but would otherwise drown the
differential signal at trace lengths tractable in pure Python).

``speedup(a, b) = cpa(b) / cpa(a)`` — how much faster ``a`` is than ``b``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Union

# Dependency-free by design (see that module's docstring), so this
# import cannot cycle back through repro.sim.
from repro.sim.datacenter.results import DatacenterResult


@dataclass
class MemoryFootprintResult:
    """Page-table memory behaviour of one (workload, organization, THP) run.

    All byte quantities are full-scale equivalents.
    """

    workload: str
    organization: str
    thp: bool
    max_contiguous_bytes: int
    total_pt_bytes: int
    peak_pt_bytes: int
    pt_alloc_cycles: float
    pages_mapped_4k: int
    pages_mapped_2m: int
    upsizes_per_way_4k: List[int] = field(default_factory=list)
    way_bytes_4k: List[int] = field(default_factory=list)
    moved_fractions_4k: List[float] = field(default_factory=list)
    l2p_entries_used: int = 0
    chunk_transitions: int = 0
    kick_histogram: Dict[int, int] = field(default_factory=dict)
    failed: bool = False
    failure_reason: str = ""
    #: Degradation-event counts by kind (fault/retry/fallback/rollback/...)
    #: and the cycles spent recovering, from the run's DegradationLog.
    degradation_counts: Dict[str, int] = field(default_factory=dict)
    recovery_cycles: float = 0.0
    #: repro.obs metric snapshot (string keys throughout, JSON-safe);
    #: empty unless the run was built with an ObservabilityConfig.
    metrics: Dict[str, Dict] = field(default_factory=dict)

    def mean_moved_fraction(self) -> float:
        examined = [f for f in self.moved_fractions_4k if f > 0]
        if not examined:
            return 0.0
        return sum(examined) / len(examined)


@dataclass
class PerformanceResult:
    """Timing behaviour of one (workload, organization, THP) trace run."""

    workload: str
    organization: str
    thp: bool
    accesses: int
    base_cycles_per_access: float
    translation_cycles: float
    l1_hits: int
    l2_hits: int
    walks: int
    faults: int
    # Differential OS costs at full-scale equivalents.
    pt_alloc_cycles: float
    reinsert_cycles: float
    l2p_exposed_cycles: float
    fullscale_accesses: float
    rehash_move_cycles: float = 0.0
    # Non-differential costs (reported, excluded from the model).
    fault_overhead_cycles: float = 0.0
    data_alloc_cycles: float = 0.0
    failed: bool = False
    failure_reason: str = ""
    #: Degradation-event counts by kind and total recovery cycles (see
    #: MemoryFootprintResult); recovery cycles are already included in
    #: pt_alloc_cycles via the allocator's stats.
    degradation_counts: Dict[str, int] = field(default_factory=dict)
    recovery_cycles: float = 0.0
    #: repro.obs metric snapshot (string keys throughout, JSON-safe);
    #: empty unless the run was built with an ObservabilityConfig.
    metrics: Dict[str, Dict] = field(default_factory=dict)

    def translation_cpa(self) -> float:
        return self.translation_cycles / self.accesses if self.accesses else 0.0

    def os_cpa(self) -> float:
        differential = (
            self.pt_alloc_cycles
            + self.reinsert_cycles
            + self.l2p_exposed_cycles
            + self.rehash_move_cycles
        )
        return differential / self.fullscale_accesses if self.fullscale_accesses else 0.0

    def cycles_per_access(self) -> float:
        """The modelled steady per-access cost of this configuration."""
        return self.base_cycles_per_access + self.translation_cpa() + self.os_cpa()

    def tlb_miss_rate(self) -> float:
        return self.walks / self.accesses if self.accesses else 0.0


SweepResult = Union[MemoryFootprintResult, PerformanceResult, DatacenterResult]

#: JSON type tags for the sweep result dataclasses (disk cache records).
_RESULT_TYPES: Dict[str, type] = {
    "memory": MemoryFootprintResult,
    "perf": PerformanceResult,
    "datacenter": DatacenterResult,
}


def result_to_record(result: SweepResult) -> Dict:
    """Serialize a sweep result to a JSON-safe record (see ``result_from_record``)."""
    for tag, cls in _RESULT_TYPES.items():
        if isinstance(result, cls):
            return {"type": tag, "fields": asdict(result)}
    raise TypeError(f"not a sweep result: {type(result).__name__}")


def result_from_record(record: Dict) -> SweepResult:
    """Rebuild a sweep result from :func:`result_to_record` output.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed records;
    the disk cache treats those as corrupt entries and recomputes.
    """
    cls = _RESULT_TYPES[record["type"]]
    fields = dict(record["fields"])
    if "kick_histogram" in fields:
        # JSON object keys are strings; the histogram is keyed by kick depth.
        fields["kick_histogram"] = {
            int(depth): count for depth, count in fields["kick_histogram"].items()
        }
    return cls(**fields)


def speedup(faster: PerformanceResult, baseline: PerformanceResult) -> float:
    """How much faster ``faster`` runs than ``baseline`` (>1 means faster).

    A configuration that failed (e.g. ECPT's 64MB allocation above 0.7
    FMFI) has no finite speedup; we return 0.0 so tables can mark it.
    """
    if faster.failed:
        return 0.0
    if baseline.failed:
        return float("inf")
    return baseline.cycles_per_access() / faster.cycles_per_access()


def geomean(values: List[float]) -> float:
    """Geometric mean of positive values (zeros/failures are skipped)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def format_table(headers: List[str], rows: List[List[str]], title: Optional[str] = None) -> str:
    """Render an aligned plain-text table (experiment drivers print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
