"""Trace-driven address-translation simulation.

* :mod:`repro.sim.config` — the Table III machine parameters and the
  factory that assembles a system (page tables + walker + TLBs + kernel)
  for any organization at any footprint scale.
* :mod:`repro.sim.simulator` — the per-access simulation loop and the
  footprint populator used by the memory experiments.
* :mod:`repro.sim.fastpath` — the vectorized batched engine
  (bit-identical results, selected via ``SimulationConfig.engine``).
* :mod:`repro.sim.results` — result containers, the differential
  performance model (cycles per access), and speedup computation.
"""

from repro.sim.config import SimulationConfig, SimulatedSystem, table3_parameters
from repro.sim.results import MemoryFootprintResult, PerformanceResult
from repro.sim.simulator import TranslationSimulator, populate_tables

__all__ = [
    "SimulationConfig",
    "SimulatedSystem",
    "table3_parameters",
    "TranslationSimulator",
    "populate_tables",
    "MemoryFootprintResult",
    "PerformanceResult",
]
