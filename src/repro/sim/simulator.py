"""The trace-driven translation simulator and the footprint populator.

Two entry points:

* :func:`populate_tables` — demand-fault a workload's entire page set
  into a built system.  This is all the memory experiments need (Table I,
  Figures 8 and 10-14): the page-table sizes, contiguity, resizes, L2P
  usage and cuckoo statistics are products of *which pages exist*, not of
  the access order.

* :class:`TranslationSimulator` — run an access trace through the TLB
  hierarchy and walker, demand-faulting as pages are first touched, and
  produce a :class:`~repro.sim.results.PerformanceResult` (Figure 9).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import (
    ConfigurationError,
    ContiguousAllocationError,
    L2POverflowError,
    SimulationError,
    TableFullError,
)
from repro.faults.log import EVENT_ABORT
from repro.kernel.thp import PAGES_PER_2M
from repro.obs.trace import (
    EVENT_MEASURE_START,
    EVENT_RUN_END,
    EVENT_RUN_START,
)
from repro.sim.config import SimulatedSystem, SimulationConfig
from repro.sim.results import MemoryFootprintResult, PerformanceResult
from repro.workloads.base import Workload

logger = logging.getLogger(__name__)

#: Failure modes a run survives by *recording* rather than crashing: the
#: paper's contiguous-allocation failure, a cuckoo table stuck despite
#: emergency resizes, and an exhausted chunk ladder.
ABORT_ERRORS = (ContiguousAllocationError, TableFullError, L2POverflowError)

#: Pages per chunk when iterating a footprint's page set.
POPULATE_CHUNK_PAGES = 65536

#: Default trace events per streamed chunk (both engines).
DEFAULT_TRACE_CHUNK = 65536


@dataclass
class LoopOutcome:
    """What one engine's trace loop produced, independent of engine.

    Both the scalar loop and :func:`repro.sim.fastpath.run_vectorized`
    return this; :meth:`TranslationSimulator.run` assembles the final
    :class:`~repro.sim.results.PerformanceResult` from it plus the
    system's counters, so the two engines share all result accounting.
    """

    events_done: int = 0
    total_cycles: float = 0.0
    warm_cycles: float = 0.0
    warm_l1: int = 0
    warm_l2: int = 0
    warm_walks: int = 0
    warm_faults: int = 0
    failed: bool = False
    reason: str = ""


def check_system_invariants(system: SimulatedSystem, progress: int) -> None:
    """Run the page tables' invariant checks, annotating any violation.

    Re-raises the :class:`SimulationError` with the simulation progress
    (accesses or pages processed) merged into its structured context.
    """
    checker = getattr(system.page_tables, "check_invariants", None)
    if checker is None:
        return
    try:
        checker()
    except SimulationError as exc:
        exc.context.setdefault("progress", progress)
        exc.context.setdefault("organization", system.config.organization)
        raise


def populate_tables(system: SimulatedSystem, progress_every: int = 0) -> None:
    """Fault every page of the workload's page set into the page tables.

    Raises :class:`ContiguousAllocationError` if the organization needs a
    contiguous allocation the fragmented machine cannot provide (the
    paper's ECPT failure above 0.7 FMFI).
    """
    aspace = system.address_space
    tables = system.page_tables
    translate = tables.translate
    fault = aspace.handle_fault
    check_every = system.config.invariant_check_every
    page_set = system.workload.page_set()
    pages = 0
    i = 0
    # Chunked iteration: one bulk tolist() per slice hands the loop
    # native ints without materializing a full-footprint Python list.
    for start in range(0, len(page_set), POPULATE_CHUNK_PAGES):
        block = page_set[start : start + POPULATE_CHUNK_PAGES]
        for vpn in block.tolist() if hasattr(block, "tolist") else map(int, block):
            if translate(vpn) is None:
                fault(vpn)
            if check_every and i % check_every == 0 and i:
                check_system_invariants(system, i)
            if progress_every and i % progress_every == 0 and i:
                # logging, not print: parallel sweep workers would otherwise
                # interleave progress lines on the shared stdout.
                logger.info("populated %d pages...", i)
            i += 1
            pages = i
    if check_every:
        check_system_invariants(system, -1)
    if progress_every:
        # The modulo check above never announces the last page (and for
        # short page sets never fires at all); always log completion.
        logger.info(
            "populated %d pages (%.0f fault cycles)", pages, aspace.totals.cycles
        )
    if system.obs is not None:
        system.obs.advance_clock(int(aspace.totals.cycles))
        if system.obs.registry is not None:
            system.obs.registry.counter("sim.populated_pages").set_total(pages)


def memory_result(system: SimulatedSystem, populate: bool = True) -> MemoryFootprintResult:
    """Populate (optionally) and collect the memory-side measurements."""
    config = system.config
    workload = system.workload
    failed = False
    reason = ""
    if populate:
        try:
            populate_tables(system)
        except ABORT_ERRORS as exc:
            failed = True
            reason = str(exc)
            # Allocation failures already logged their abort in the
            # allocator; record the structural ones here.
            if not isinstance(exc, ContiguousAllocationError):
                system.degradation.record(
                    EVENT_ABORT, "populate", error=type(exc).__name__,
                )
    tables = system.page_tables
    scale = config.scale
    if config.organization == "radix":
        result = MemoryFootprintResult(
            workload=workload.spec.name,
            organization="radix",
            thp=config.thp_enabled,
            max_contiguous_bytes=tables.max_contiguous_bytes(),
            total_pt_bytes=tables.table_bytes() * scale,
            peak_pt_bytes=tables.table_bytes() * scale,
            pt_alloc_cycles=system.address_space.totals.pt_alloc_cycles * scale,
            pages_mapped_4k=system.address_space.totals.pages_mapped_4k,
            pages_mapped_2m=system.address_space.totals.pages_mapped_2m,
            failed=failed,
            failure_reason=reason,
            degradation_counts=dict(system.degradation.counts()),
            recovery_cycles=system.degradation.recovery_cycles,
        )
        if system.obs is not None:
            result.metrics = system.obs.snapshot_metrics()
            system.obs.close()
        return result
    # Hashed organizations: the allocator already reports scale-equivalents.
    result = MemoryFootprintResult(
        workload=workload.spec.name,
        organization=config.organization,
        thp=config.thp_enabled,
        max_contiguous_bytes=tables.max_contiguous_bytes(),
        total_pt_bytes=tables.total_bytes() * scale,
        peak_pt_bytes=tables.peak_total_bytes * scale,
        pt_alloc_cycles=tables.allocation_cycles(),
        pages_mapped_4k=system.address_space.totals.pages_mapped_4k,
        pages_mapped_2m=system.address_space.totals.pages_mapped_2m,
        upsizes_per_way_4k=tables.upsizes_per_way("4K"),
        way_bytes_4k=[b * scale for b in tables.way_bytes("4K")],
        moved_fractions_4k=tables.moved_fractions("4K"),
        kick_histogram=dict(tables.kick_histogram()),
        failed=failed,
        failure_reason=reason,
        degradation_counts=dict(system.degradation.counts()),
        recovery_cycles=system.degradation.recovery_cycles,
    )
    if config.organization == "mehpt":
        result.l2p_entries_used = tables.l2p_entries_used()
        result.chunk_transitions = tables.total_chunk_transitions()
    if system.obs is not None:
        result.metrics = system.obs.snapshot_metrics()
        system.obs.close()
    return result


class TranslationSimulator:
    """Runs an access trace through one assembled system."""

    def __init__(
        self,
        workload: Optional[Workload],
        config: SimulationConfig,
        trace_length: int = 200_000,
        warmup_fraction: float = 0.0,
        engine_chunk: Optional[int] = None,
    ) -> None:
        if workload is None:
            # Trace-driven path: the config names a .vpt file to replay.
            workload = config.load_trace_workload()
        if trace_length <= 0:
            raise ConfigurationError(
                f"trace_length {trace_length} must be > 0",
                field="trace_length", value=trace_length,
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction {warmup_fraction} must be in [0, 1) — the "
                f"measured window must be non-empty",
                field="warmup_fraction", value=warmup_fraction,
            )
        if engine_chunk is not None and engine_chunk < 1:
            raise ConfigurationError(
                f"engine_chunk {engine_chunk} must be >= 1",
                field="engine_chunk", value=engine_chunk,
            )
        self.workload = workload
        self.config = config
        self.trace_length = trace_length
        self.warmup_fraction = warmup_fraction
        #: Trace events fed to the engine per chunk (None = the engine
        #: default).  Results are chunk-size invariant; tests use small
        #: chunks to exercise boundary handling.
        self.engine_chunk = engine_chunk
        self.system: Optional[SimulatedSystem] = None

    def _scalar_loop(
        self, system: SimulatedSystem, warmup_events: int
    ) -> LoopOutcome:
        """The per-access reference engine (the oracle for equivalence).

        Feeds from :meth:`~repro.workloads.base.Workload.trace_chunks`
        so even scalar runs never materialize the whole trace.
        """
        tlb = system.tlb
        aspace = system.address_space
        obs = system.obs
        out = LoopOutcome()
        translate_fn = tlb.translate
        fault_fn = aspace.handle_fault
        check_every = self.config.invariant_check_every
        # The sim-cycle clock only stamps trace events; skip the
        # per-access advance when no trace sink is attached.
        clock = (
            obs.advance_clock
            if obs is not None and obs.tracer is not None
            else None
        )
        total_cycles = 0.0
        events_done = 0
        i = 0
        try:
            for chunk in self.workload.trace_chunks(
                self.trace_length, self.engine_chunk or DEFAULT_TRACE_CHUNK
            ):
                for vpn in chunk.tolist():
                    outcome = translate_fn(vpn)
                    total_cycles += outcome.cycles
                    if outcome.level == "fault":
                        fault = fault_fn(vpn)
                        tlb.fill(
                            vpn if fault.page_size != "2M"
                            else aspace.thp.region_base(vpn),
                            fault.page_size,
                        )
                    if check_every and i % check_every == 0 and i:
                        check_system_invariants(system, i)
                    if clock is not None:
                        # The sim-cycle clock is the accumulated translation
                        # cost; events emitted while servicing access i carry
                        # the clock at the access's start.
                        clock(int(total_cycles))
                    i += 1
                    events_done = i
                    if events_done == warmup_events:
                        out.warm_cycles = total_cycles
                        out.warm_l1, out.warm_l2 = tlb.l1_hits, tlb.l2_hits
                        out.warm_walks, out.warm_faults = tlb.walks, tlb.faults
                        if obs is not None:
                            obs.emit(EVENT_MEASURE_START, event=events_done)
        except ABORT_ERRORS as exc:
            out.failed = True
            out.reason = str(exc)
            if not isinstance(exc, ContiguousAllocationError):
                system.degradation.record(
                    EVENT_ABORT, "trace", error=type(exc).__name__,
                )
        out.events_done = events_done
        out.total_cycles = total_cycles
        return out

    def run(self) -> PerformanceResult:
        """Simulate the trace; returns the performance measurements."""
        config = self.config
        engine = config.resolve_engine()
        system = config.build(self.workload)
        self.system = system
        tlb = system.tlb
        aspace = system.address_space
        tables = system.page_tables
        obs = system.obs

        # The first ``warmup_fraction`` of the trace warms the TLBs and
        # page tables (translations and demand faults run normally) but
        # is excluded from the measured window: translation cycles, TLB
        # hit/walk/fault counters and the access count all start at the
        # warmup boundary.  Traces always deliver exactly trace_length
        # events, so the boundary is known before streaming begins.
        warmup_events = int(self.warmup_fraction * self.trace_length)
        if obs is not None:
            # The run_start payload carries every model constant the
            # repro.obs.report CLI needs to rebuild the differential
            # performance terms from the event stream alone.
            obs.emit(
                EVENT_RUN_START,
                workload=self.workload.spec.name,
                organization=config.organization,
                thp=config.thp_enabled,
                scale=config.scale,
                seed=config.seed,
                trace_events=self.trace_length,
                warmup_events=warmup_events,
                sample_every=(
                    config.obs.trace_sample_every if config.obs is not None else 1
                ),
                page_repeats=max(1, self.workload.spec.pattern.page_repeats),
                base_cycles_per_access=config.base_cycles_per_access,
                fullscale_accesses=self.workload.spec.fullscale_accesses,
                reinsert_cycles=config.reinsert_cycles,
                l2p_cycles=config.l2p_cycles,
                rehash_entry_cycles=config.rehash_entry_cycles,
                fault_overhead_cycles=config.fault_overhead_cycles,
                l2_hit_cycles=tlb.l2_miss_probe_cycles,
                pt_alloc_cycles_at_start=(
                    0.0 if config.organization == "radix"
                    else tables.allocation_cycles()
                ),
            )
            if warmup_events == 0:
                obs.emit(EVENT_MEASURE_START, event=0)

        if engine == "vectorized":
            from repro.sim.fastpath import run_vectorized

            loop = run_vectorized(
                system, self.workload, self.trace_length, warmup_events,
                chunk_values=self.engine_chunk,
            )
        else:
            loop = self._scalar_loop(system, warmup_events)
        events_done = loop.events_done
        total_cycles = loop.total_cycles
        failed = loop.failed
        reason = loop.reason

        if events_done >= warmup_events:
            translation_cycles = total_cycles - loop.warm_cycles
            l1_hits = tlb.l1_hits - loop.warm_l1
            l2_hits = tlb.l2_hits - loop.warm_l2
            walks = tlb.walks - loop.warm_walks
            faults = tlb.faults - loop.warm_faults
        else:
            # Aborted inside the warmup window: nothing was measured.
            translation_cycles = 0.0
            l1_hits = l2_hits = walks = faults = 0

        # Each trace event stands for ``page_repeats`` accesses to that
        # page; the repeats hit the L1 TLB (0 extra translation cycles)
        # and only scale the access count.  ``events_done`` — not
        # ``len(trace)`` — feeds the count, so an aborted run's per-access
        # rates divide the prefix's cycles by the prefix's accesses.
        repeats = max(1, self.workload.spec.pattern.page_repeats)
        accesses = max(0, events_done - warmup_events) * repeats

        totals = aspace.totals
        rehash_moves = 0.0
        if config.organization == "radix":
            # Radix node allocations are charged per fault at scaled counts;
            # convert to full-scale equivalents.
            pt_alloc = totals.pt_alloc_cycles * config.scale
            reinsert = 0.0
            l2p_exposed = 0.0
        else:
            pt_alloc = tables.allocation_cycles()
            reinsert = totals.reinsert_cycles * config.scale
            rehash_moves = (
                tables.total_relocated_entries()
                * config.scale
                * config.rehash_entry_cycles
            )
            l2p_exposed = 0.0
            if config.organization == "mehpt":
                l2p_exposed = (
                    totals.kicks * config.scale * config.l2p_cycles
                )
        metrics = {}
        if obs is not None:
            # run_end records the simulator's own term values so the
            # report CLI can cross-check its event-derived reconstruction.
            obs.emit(
                EVENT_RUN_END,
                events_done=events_done,
                accesses=accesses,
                failed=failed,
                translation_cycles=translation_cycles,
                l1_hits=l1_hits,
                l2_hits=l2_hits,
                walks=walks,
                faults=faults,
                pt_alloc_cycles=pt_alloc,
                reinsert_cycles=reinsert,
                l2p_exposed_cycles=l2p_exposed,
                rehash_move_cycles=rehash_moves,
                relocated_entries=(
                    0 if config.organization == "radix"
                    else tables.total_relocated_entries()
                ),
            )
            if obs.registry is not None:
                reg = obs.registry
                reg.counter("sim.trace_events").set_total(events_done)
                reg.counter("sim.accesses").set_total(accesses)
                reg.counter("sim.translation_cycles").set_total(
                    translation_cycles
                )
            metrics = obs.snapshot_metrics()
            obs.close()
        return PerformanceResult(
            workload=self.workload.spec.name,
            organization=config.organization,
            thp=config.thp_enabled,
            accesses=accesses,
            base_cycles_per_access=config.base_cycles_per_access,
            translation_cycles=translation_cycles,
            l1_hits=l1_hits,
            l2_hits=l2_hits,
            walks=walks,
            faults=faults,
            pt_alloc_cycles=pt_alloc,
            reinsert_cycles=reinsert,
            l2p_exposed_cycles=l2p_exposed,
            rehash_move_cycles=rehash_moves,
            fullscale_accesses=self.workload.spec.fullscale_accesses,
            fault_overhead_cycles=totals.faults * config.fault_overhead_cycles,
            data_alloc_cycles=totals.data_alloc_cycles,
            failed=failed,
            failure_reason=reason,
            degradation_counts=dict(system.degradation.counts()),
            recovery_cycles=system.degradation.recovery_cycles,
            metrics=metrics,
        )
