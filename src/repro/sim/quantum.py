"""Vectorized quantum engine for multi-tenant and multi-process runs.

:class:`QuantumEngine` is the scheduler-friendly sibling of
:func:`repro.sim.fastpath.run_vectorized`: one engine per process holds
suspendable vectorized state — :class:`~repro.mmu.tlb_array.ArrayTlb`
mirrors of the process's L1/L2 TLBs, a
:class:`~repro.sim.fastpath.StaticThpSizer`, and a
:mod:`repro.mmu.walk_batch` Plan/Seal/Flush batcher — that survives
across context switches, so each scheduling quantum is processed as one
numpy chunk instead of one Python int at a time.

Bit-identity contract (mirrors :meth:`repro.kernel.process.Process.
run_quantum` exactly):

* Per-quantum hit levels come from the same offline-LRU batch probes as
  the single-process fast path; the leave-at-MRU invariant holds across
  quanta because nothing outside the process's own accesses touches its
  TLBs (the datacenter shootdown model is accounting-only).
* Misses are planned in trace order against the real walker state; only
  demand faults run the real kernel fault path.  The per-walk NUMA
  charge (``machine.on_walk``) that the scalar
  :meth:`~repro.mmu.hierarchy.TlbHierarchy.translate` applies per walk
  is replicated as batched per-socket adds at flush — exact, because the
  active socket is fixed for the whole quantum and cycle values are
  integer-valued floats below 2**53.
* On an abort raised by the fault handler, pending walks are flushed
  (their translate() completed in the scalar loop before the fault
  raised) and counters are applied for the prefix through the aborting
  access, but the process cursor/cycles are left untouched — exactly
  the scalar loop's exception semantics.
* TLB mirrors are written back into the real TLB lists when the process
  finishes (or is torn down mid-run), so final TLB contents equal the
  scalar engine's.  Aborted runs' TLB contents are unspecified in both
  engines; their counters are exact.

The datacenter simulator shares one
:class:`~repro.mmu.walk_batch.NumaCacheBatch` across every tenant's
batcher — tenants share the machine's cache hierarchy, and per-quantum
flushing keeps the global line stream in exactly the scalar
interleaving.  The multi-process simulator gives each engine its own
private cache mirror, matching its per-process hierarchies.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.hashing.clustered import PAGE_SHIFT
from repro.mmu.tlb_array import ArrayTlb
from repro.mmu.walk_batch import CacheBatch, make_walk_batch


class QuantumEngine:
    """Suspendable vectorized execution state for one process."""

    def __init__(
        self,
        process,
        system,
        caches: Optional[CacheBatch] = None,
        machine=None,
    ) -> None:
        # Lazy: repro.sim.fastpath pulls in repro.sim.simulator, which
        # would close an import cycle through repro.sim.results when
        # this module is loaded by the datacenter package.
        from repro.sim.fastpath import StaticThpSizer, _apply_counters

        self._apply_counters = _apply_counters
        tlb = system.tlb
        self.process = process
        self.system = system
        #: NUMA accounting hook (the datacenter machine) or None.
        self.machine = machine
        self.sizes = list(tlb.l1.keys())
        self.sizer = StaticThpSizer(system.address_space, self.sizes)
        self._shifts = [PAGE_SHIFT[size] for size in self.sizes]
        self._l2_hit_cycles = [tlb.l2[size].hit_cycles for size in self.sizes]
        self._l2_probe_cycles = tlb.l2_miss_probe_cycles
        self.l1_arr: Dict[str, ArrayTlb] = {
            size: ArrayTlb.from_tlb(t) for size, t in tlb.l1.items()
        }
        self.l2_arr: Dict[str, ArrayTlb] = {
            size: ArrayTlb.from_tlb(t) for size, t in tlb.l2.items()
        }
        self._owns_caches = caches is None
        self.batcher = make_walk_batch(system, self.sizes, caches=caches)
        #: False when the walker/cache geometry has no batched
        #: implementation; the caller must then run scalar quanta.
        self.supported = self.batcher is not None
        self._finalized = False

    def run_quantum(self, quantum: int) -> float:
        """Execute up to ``quantum`` accesses; returns the cycles spent.

        Drop-in replacement for the scalar
        :meth:`~repro.kernel.process.Process.run_quantum`: updates the
        same process fields, returns the same float, raises the same
        exceptions at the same access.
        """
        process = self.process
        trace = process.trace
        start = process.cursor
        end = min(start + quantum, len(trace))
        n = end - start
        sizes = self.sizes
        chunk = np.ascontiguousarray(trace[start:end], dtype=np.int64)
        stream = self.sizer.codes(chunk)
        level = np.zeros(n, dtype=np.int8)
        cycles = np.zeros(n, dtype=np.int64)
        for code, size in enumerate(sizes):
            if self.sizer.enabled:
                idx = np.flatnonzero(stream == code)
            elif code == 0:
                idx = np.arange(n, dtype=np.int64)  # all accesses are 4K
            else:
                break
            if idx.size == 0:
                continue
            numbers = chunk[idx] >> np.int64(self._shifts[code])
            l1_hit = self.l1_arr[size].batch_probe(numbers)
            l1_miss = idx[~l1_hit]
            l2_hit = self.l2_arr[size].batch_probe(numbers[~l1_hit])
            hit2 = l1_miss[l2_hit]
            level[hit2] = 1
            cycles[hit2] = self._l2_hit_cycles[code]
            level[l1_miss[~l2_hit]] = 2

        batcher = self.batcher
        fault_fn = process.address_space.handle_fault
        tlb = self.system.tlb
        aborted_at = -1
        try:
            for local in np.flatnonzero(level >= 2).tolist():
                aborted_at = local
                vpn = int(chunk[local])
                code = int(stream[local])
                if batcher.plan(local, vpn, code):
                    # Demand fault: seal the segment's line addresses
                    # against the pre-fault geometry, then run the real
                    # fault handler in trace order.
                    batcher.seal_segment()
                    level[local] = 3
                    fault = fault_fn(vpn)
                    assert fault.page_size == sizes[code], (
                        "static page-size prediction diverged from the kernel"
                    )
        except Exception:
            # The aborting access's translate() completed in the scalar
            # loop (walk charged, counters bumped) before the fault
            # handler raised; cursor/cycles never advance.
            self._drain(cycles)
            done = aborted_at + 1
            self._apply_counters(tlb, sizes, level[:done], stream[:done])
            if self._owns_caches:
                batcher.caches.write_back()
            raise
        self._drain(cycles)
        self._apply_counters(tlb, sizes, level, stream)
        total = float(cycles.sum())
        process.accesses_done += n
        process.cursor = end
        process.cycles += total
        if process.cursor >= len(trace):
            process.finished = True
            self.finalize()
        return total

    def _drain(self, cycles: np.ndarray) -> None:
        """Flush pending walks: scatter cycles, charge the NUMA hook."""
        result = self.batcher.flush()
        if result is None:
            return
        cycles[result.locals_] = self._l2_probe_cycles + result.cycles
        machine = self.machine
        if machine is not None:
            # Replicates translate()'s per-walk on_walk(walk.cycles):
            # the active socket is fixed for the whole quantum and walk
            # cycles are integer-valued, so the batched sum is exact.
            socket = machine.active_socket
            machine.walks_by_socket[socket] += int(result.locals_.size)
            machine.walk_cycles_by_socket[socket] += float(result.cycles.sum())

    def finalize(self) -> None:
        """Write TLB mirrors (and an owned cache mirror) back; idempotent.

        Called when the process finishes or is torn down mid-run so the
        real TLB lists hold exactly what the scalar engine leaves
        behind.  A shared cache mirror is written back by its owner (the
        datacenter simulator) instead.
        """
        if self._finalized:
            return
        self._finalized = True
        tlb = self.system.tlb
        for size in self.sizes:
            self.l1_arr[size].write_back(tlb.l1[size])
            self.l2_arr[size].write_back(tlb.l2[size])
        if self._owns_caches and self.batcher is not None:
            self.batcher.caches.write_back()
