"""NUMA machine topology: sockets, shared buddy pools, and line homing.

The datacenter model's physical layer.  A :class:`Machine` owns one
fragmented :class:`~repro.mem.buddy.BuddyAllocator` pool per socket and
a :class:`LineHomeMap` recording which socket every page-table
cache line lives on.  Tenants allocate through a
:class:`SocketPoolAllocator` (preferred-socket placement with
deterministic spill), and every walk probe goes through a
:class:`NumaCacheHierarchy` that charges a remote-DRAM delta whenever
the line's home socket differs from the socket the tenant is running on.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, OutOfMemoryError
from repro.mem.alloc_cost import AllocationCostModel
from repro.mem.allocator import AllocationStats, _FaultHooks
from repro.mem.buddy import BuddyAllocator
from repro.mem.cache import CacheHierarchy
from repro.mem.fragmentation import fmfi as fmfi_of

#: Home-map marker for replicated units: local on every socket.
ALL_SOCKETS = -1


class LineHomeMap:
    """Maps synthetic cache-line addresses to the socket that homes them.

    Units are registered as ``(base_line, n_lines)`` intervals — one per
    buddy allocation (a contiguous way, a chunk, a radix node).  Lookups
    bisect over the sorted bases; unknown lines are treated as local
    (data pages and MMU-resident structures are not modelled here).
    """

    def __init__(self) -> None:
        self._bases: List[int] = []
        self._units: Dict[int, List[int]] = {}  # base -> [n_lines, socket]
        #: Bumped on every mutation; cached interval snapshots
        #: (:meth:`as_arrays` consumers) revalidate against it.
        self.epoch = 0

    def register(self, base_line: int, n_lines: int, socket: int) -> None:
        """Add a unit; re-registering a base updates it in place."""
        if base_line not in self._units:
            bisect.insort(self._bases, base_line)
        self._units[base_line] = [n_lines, socket]
        self.epoch += 1

    def set_home(self, base_line: int, socket: int) -> None:
        """Re-home an existing unit (migration/replication)."""
        self._units[base_line][1] = socket
        self.epoch += 1

    def unregister(self, base_line: int) -> None:
        """Drop a unit (storage released or tenant exited)."""
        if base_line in self._units:
            del self._units[base_line]
            index = bisect.bisect_left(self._bases, base_line)
            del self._bases[index]
            self.epoch += 1

    def as_arrays(self):
        """``(bases, ends, sockets)`` int64 snapshot, sorted by base.

        The batched NUMA probe path resolves line homes with one
        ``searchsorted`` over this snapshot instead of per-line
        :meth:`home_of` bisects; callers cache it keyed on
        :attr:`epoch`.
        """
        bases = np.asarray(self._bases, dtype=np.int64)
        n_lines = np.array(
            [self._units[b][0] for b in self._bases], dtype=np.int64
        )
        sockets = np.array(
            [self._units[b][1] for b in self._bases], dtype=np.int64
        )
        return bases, bases + n_lines, sockets

    def home_of(self, line_addr: int) -> Optional[int]:
        """The socket homing ``line_addr`` or None if unregistered."""
        index = bisect.bisect_right(self._bases, line_addr) - 1
        if index < 0:
            return None
        base = self._bases[index]
        n_lines, socket = self._units[base]
        if line_addr < base + n_lines:
            return socket
        return None

    def __len__(self) -> int:
        return len(self._units)


class Machine:
    """N sockets, each a fragmented buddy pool, plus NUMA accounting.

    Doubles as the ``numa`` hook threaded into
    :class:`~repro.mmu.hierarchy.TlbHierarchy` (:meth:`on_walk`) and the
    placement oracle consulted by :class:`NumaCacheHierarchy`:
    ``active_socket`` is set by the scheduler before each quantum, so
    walk cycles and DRAM locality are charged to the socket the tenant
    is actually running on.
    """

    def __init__(
        self,
        sockets: int,
        pool_bytes_per_socket: int,
        remote_dram_delta: float = 120.0,
    ) -> None:
        if sockets < 1:
            raise ConfigurationError("need at least one socket")
        self.sockets = sockets
        self.remote_dram_delta = remote_dram_delta
        self.pools = [
            BuddyAllocator(pool_bytes_per_socket) for _ in range(sockets)
        ]
        self.home_map = LineHomeMap()
        self.active_socket = 0
        self.walks_by_socket = [0] * sockets
        self.walk_cycles_by_socket = [0.0] * sockets
        self.local_dram_accesses = 0
        self.remote_dram_accesses = 0
        self.remote_delta_cycles = 0.0
        self.spill_allocations = 0
        self._holdouts: List[Tuple[int, int]] = []

    def fragment(self, fraction: float) -> None:
        """Pre-fragment every pool deterministically (no RNG).

        Allocates ``fraction`` of each pool's frames as order-0 singles,
        then frees every other one: the freed frames cannot coalesce past
        order 0, so large-order requests see a genuinely fragmented pool.
        The surviving holdouts stay allocated for the whole run.
        """
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError("frag fraction must be in [0, 1)")
        for socket, pool in enumerate(self.pools):
            target = int(pool.total_frames * fraction)
            starts = [pool.alloc_order(0) for _ in range(target)]
            for index, start in enumerate(starts):
                if index % 2:
                    pool.free(start)
                else:
                    self._holdouts.append((socket, start))

    def on_walk(self, cycles: float) -> None:
        """Attribute one finished page walk to the active socket."""
        self.walks_by_socket[self.active_socket] += 1
        self.walk_cycles_by_socket[self.active_socket] += cycles


class SocketPoolAllocator(_FaultHooks):
    """Per-tenant allocator over the machine's shared socket pools.

    Placement prefers the tenant's current socket and spills to the
    other pools in deterministic round-robin order; only when every pool
    rejects the request does the allocation fail.  Each tenant gets its
    own instance (and so its own :class:`AllocationStats`) because the
    kernel fault handler charges page-table allocation cycles by *delta*
    of the owning allocator's stats — shared stats would double-bill.

    The fault-injection sites (:mod:`repro.faults`) are armed exactly as
    on :class:`~repro.mem.allocator.BuddyBackedAllocator`: the plan is
    consulted at the preferred pool's FMFI before every attempt, and
    transient failures retry with cycle-charged backoff.
    """

    def __init__(
        self,
        machine: Machine,
        cost_model: Optional[AllocationCostModel] = None,
        stats: Optional[AllocationStats] = None,
        preferred_socket: int = 0,
        fault_plan=None,
        recovery=None,
        degradation=None,
    ) -> None:
        self.machine = machine
        self.cost_model = cost_model if cost_model is not None else AllocationCostModel()
        self.stats = stats if stats is not None else AllocationStats()
        self.preferred_socket = preferred_socket
        self._ids = itertools.count(1)
        #: handle -> (socket, start_frame, nbytes)
        self._live: Dict[int, Tuple[int, int, int]] = {}
        self.alloc_failures = 0
        #: Bumped on every successful alloc/free.  The placement scanner
        #: skips rescanning a tenant whose epoch has not moved since the
        #: last scan — placements can only change through this allocator.
        self.alloc_epoch = 0
        self._arm(fault_plan, recovery, degradation)

    def current_fmfi(self, nbytes: int) -> float:
        """FMFI of the preferred pool at the request's order."""
        pool = self.machine.pools[self.preferred_socket]
        return fmfi_of(pool, pool.order_for_bytes(nbytes))

    def _place(self, nbytes: int) -> Tuple[int, int]:
        """Try the preferred socket, then spill round-robin."""
        last_error: Optional[Exception] = None
        for offset in range(self.machine.sockets):
            socket = (self.preferred_socket + offset) % self.machine.sockets
            try:
                start = self.machine.pools[socket].alloc_bytes(nbytes)
            except OutOfMemoryError as exc:
                last_error = exc
                continue
            if offset:
                self.machine.spill_allocations += 1
            return socket, start
        raise last_error  # every pool refused

    def alloc(self, nbytes: int) -> int:
        """Place ``nbytes`` in a pool; returns an opaque handle."""
        attempt = 0
        while True:
            level = self.current_fmfi(nbytes)
            try:
                self._injected(nbytes, level, attempt)
                socket, start = self._place(nbytes)
                break
            except Exception as exc:
                self.stats.on_failure()
                if not self._recover(exc, attempt, nbytes):
                    self.alloc_failures += 1
                    raise
                attempt += 1
        cycles = self.cost_model.cycles(
            nbytes, min(level, self.cost_model.fail_fmfi)
        )
        handle = next(self._ids)
        self._live[handle] = (socket, start, nbytes)
        self.stats.on_alloc(nbytes, cycles)
        self.alloc_epoch += 1
        return handle

    def free(self, handle: int) -> None:
        """Return the placement to its pool."""
        socket, start, nbytes = self._live.pop(handle)
        self.machine.pools[socket].free(start)
        self.stats.on_free(nbytes)
        self.alloc_epoch += 1

    def socket_of(self, handle: int) -> int:
        """The socket a live handle was placed on."""
        return self._live[handle][0]

    def release_all(self) -> None:
        """Free every live placement (tenant exit teardown)."""
        for handle in list(self._live):
            self.free(handle)


class NumaCacheHierarchy(CacheHierarchy):
    """Cache hierarchy whose DRAM misses are homed by the machine.

    One shared instance serves every tenant (the shared-LLC story):
    storages claim globally-disjoint synthetic line ranges, so tenants
    never alias.  A miss to a line homed on a different socket than the
    machine's ``active_socket`` pays ``remote_dram_delta`` extra cycles;
    replicated units (home ``ALL_SOCKETS``) and unregistered lines are
    local everywhere.
    """

    def __init__(self, machine: Machine, levels=None, dram_cycles: int = 200) -> None:
        super().__init__(levels=levels, dram_cycles=dram_cycles)
        self.machine = machine

    def access(self, line_addr: int) -> float:
        """Probe the levels; on a DRAM miss, charge NUMA locality."""
        for level in self.levels:
            if level.access(line_addr):
                return level.hit_cycles
        self.dram_accesses += 1
        machine = self.machine
        home = machine.home_map.home_of(line_addr)
        if home is None or home == ALL_SOCKETS or home == machine.active_socket:
            machine.local_dram_accesses += 1
            return self.dram_cycles
        machine.remote_dram_accesses += 1
        machine.remote_delta_cycles += machine.remote_dram_delta
        return self.dram_cycles + machine.remote_dram_delta
