"""The multi-tenant NUMA datacenter simulator.

Grows :class:`~repro.sim.multiprocess.MultiProcessSimulator` into a
machine model: N sockets with shared fragmented buddy pools
(:mod:`repro.sim.datacenter.topology`), per-tenant
ME-HPT/ECPT/radix tables placed in those pools, per-socket round-robin
scheduling with :class:`~repro.kernel.context.ContextSwitchModel`
switch costs, fork/exec/exit churn, TLB-shootdown accounting
(:mod:`repro.sim.datacenter.shootdown`), and Mitosis-style
replication/migration policies
(:mod:`repro.sim.datacenter.replication`).

Every page-table cache line a walk touches is charged local or remote
DRAM latency according to where the owning node/chunk physically lives
— which is the mechanism that lets the datacenter experiment answer
"does ME-HPT replicate more cheaply than radix?".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError, MEHPTError
from repro.common.units import CACHE_LINE, MB, PAGE_4K
from repro.kernel.context import ContextSwitchModel
from repro.kernel.process import Process
from repro.mem.alloc_cost import AllocationCostModel
from repro.mmu.walk_batch import NumaCacheBatch
from repro.obs import build_observability
from repro.obs.trace import (
    EVENT_PROCESS_LIFECYCLE,
    EVENT_RUN_END,
    EVENT_RUN_START,
)
from repro.sim.config import SimulationConfig
from repro.sim.datacenter.replication import (
    POLICIES,
    PlacementUnit,
    ReplicationEngine,
)
from repro.sim.datacenter.results import DatacenterResult
from repro.sim.datacenter.shootdown import ShootdownModel
from repro.sim.datacenter.topology import (
    Machine,
    NumaCacheHierarchy,
    SocketPoolAllocator,
)
from repro.sim.quantum import QuantumEngine
from repro.workloads import get_workload

#: Prefix marking sweep-cell overrides that parameterize the datacenter
#: model rather than :class:`~repro.sim.config.SimulationConfig`.
DC_PREFIX = "dc_"

#: Lines per radix node (one 4KB page of PTEs).
_NODE_LINES = PAGE_4K // CACHE_LINE


@dataclass(frozen=True)
class DatacenterParams:
    """Knobs of the machine model, set via ``dc_*`` sweep overrides.

    All fields are scalars so the sweep engine's disk cache can
    fingerprint them; :meth:`from_overrides` maps ``dc_sockets=4`` to
    ``sockets=4`` etc. and validates ranges.
    """

    sockets: int = 2
    processes: int = 8
    policy: str = "none"
    quantum: int = 2000
    cores_per_socket: int = 8
    #: Scheduler steps between churn events (0 disables churn).
    churn_every: int = 0
    #: Replacement tenants the churn model may fork over the whole run.
    max_forks: int = 8
    #: Scheduler steps between cross-socket rebalances (0 disables).
    rebalance_every: int = 3
    remote_dram_delta: float = 120.0
    #: Buddy-pool size per socket, in MB.
    pool_mb: int = 64
    #: Fraction of each pool pre-fragmented before tenants arrive.
    frag_fraction: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range values."""
        if self.sockets < 1:
            raise ConfigurationError("dc_sockets must be >= 1")
        if self.processes < 1:
            raise ConfigurationError("dc_processes must be >= 1")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"dc_policy {self.policy!r} not in {POLICIES}"
            )
        if self.quantum < 1:
            raise ConfigurationError("dc_quantum must be >= 1")
        if self.cores_per_socket < 1:
            raise ConfigurationError("dc_cores_per_socket must be >= 1")
        if self.churn_every < 0 or self.rebalance_every < 0:
            raise ConfigurationError("dc churn/rebalance periods must be >= 0")
        if self.max_forks < 0:
            raise ConfigurationError("dc_max_forks must be >= 0")
        if self.remote_dram_delta < 0:
            raise ConfigurationError("dc_remote_dram_delta must be >= 0")
        if self.pool_mb < 1:
            raise ConfigurationError("dc_pool_mb must be >= 1")
        if not 0.0 <= self.frag_fraction < 1.0:
            raise ConfigurationError("dc_frag_fraction must be in [0, 1)")

    @classmethod
    def from_overrides(cls, overrides: Dict[str, object]) -> "DatacenterParams":
        """Build params from ``dc_*``-prefixed override names."""
        mapping = {DC_PREFIX + f.name: f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(overrides) - set(mapping))
        if unknown:
            raise ConfigurationError(
                f"unknown datacenter override(s) {unknown}; "
                f"valid: {sorted(mapping)}"
            )
        params = cls(**{mapping[k]: v for k, v in overrides.items()})
        params.validate()
        return params


def split_overrides(
    overrides: Dict[str, object],
) -> Tuple[DatacenterParams, Dict[str, object]]:
    """Split sweep-cell overrides into (validated dc params, config kwargs)."""
    dc: Dict[str, object] = {}
    config: Dict[str, object] = {}
    for name, value in overrides.items():
        (dc if name.startswith(DC_PREFIX) else config)[name] = value
    return DatacenterParams.from_overrides(dc), config


class Tenant:
    """One tenant process plus its placement state on the machine."""

    def __init__(
        self,
        index: int,
        app: str,
        system,
        process: Process,
        pool: SocketPoolAllocator,
        socket: int,
        cores_per_socket: int,
    ) -> None:
        self.index = index
        self.app = app
        self.system = system
        self.process = process
        self.pool = pool
        #: Socket the scheduler currently runs this tenant on.
        self.socket = socket
        #: Socket its page-table units were last homed to (migrate policy).
        self.table_home = socket
        self.cores_per_socket = cores_per_socket
        self.touched_cores = {(socket, index % cores_per_socket)}
        #: base_line -> PlacementUnit for every registered unit.
        self.units: Dict[int, PlacementUnit] = {}
        #: Radix node addr -> pool handle backing it.
        self.node_handles: Dict[int, int] = {}
        self.charged_faults = 0
        self.active = True
        #: Vectorized quantum engine (None = scalar quanta).
        self.engine: Optional[QuantumEngine] = None
        #: Placement-change signature recorded after the last unit scan.
        self.scan_sig: Optional[Tuple[int, int]] = None

    @property
    def name(self) -> str:
        return self.process.name

    def touch(self) -> None:
        """Record the core about to run this tenant's quantum."""
        self.touched_cores.add((self.socket, self.index % self.cores_per_socket))

    def iter_storage_placements(self) -> Iterator[Tuple[int, int, int, int]]:
        """Live ``(base_line, n_lines, nbytes, handle)`` for hashed tables."""
        tables = self.system.page_tables
        for per_size in tables.tables.values():
            for way in per_size.table.ways:
                for storage in (way.storage, way.old_storage):
                    if storage is not None:
                        for placement in storage.placements():
                            yield placement


class DatacenterSimulator:
    """Runs tenants to completion on the NUMA machine; see module doc."""

    def __init__(
        self,
        apps: List[str],
        config: SimulationConfig,
        params: Optional[DatacenterParams] = None,
        trace_length: int = 30_000,
        switch_model: Optional[ContextSwitchModel] = None,
    ) -> None:
        if not apps:
            raise ConfigurationError("need at least one app")
        self.params = params if params is not None else DatacenterParams()
        self.params.validate()
        self.config = config
        self.apps = list(apps)
        self.trace_length = trace_length
        self.switch_model = (
            switch_model if switch_model is not None else ContextSwitchModel()
        )
        self.machine = Machine(
            self.params.sockets,
            self.params.pool_mb * MB,
            remote_dram_delta=self.params.remote_dram_delta,
        )
        self.machine.fragment(self.params.frag_fraction)
        base_caches = config.build_cache_hierarchy()
        self.caches = NumaCacheHierarchy(
            self.machine,
            levels=base_caches.levels,
            dram_cycles=base_caches.dram_cycles,
        )
        self.shootdown = ShootdownModel()
        self.replication = ReplicationEngine(self.params.policy, self.machine)
        self.obs = build_observability(config.obs)
        #: Tenant build config: observability stays at the machine level
        #: (per-tenant registries would collide on shared metric names).
        self._tenant_config = dataclasses.replace(config, obs=None)
        self.tenants: List[Tenant] = []
        self._current: Dict[int, Optional[Tenant]] = {}
        self._next_index = 0
        self._rebalance_pick = 0
        self.run_cycles = 0.0
        self.switch_cycles = 0.0
        self.l2p_switch_cycles = 0.0
        self.l2p_samples: List[int] = []
        self.forks = 0
        self.exits = 0
        self.pool_alloc_failures = 0
        self.failed = False
        self.failure_reason = ""
        self._clock = 0.0
        # Engine selection (SimulationConfig.engine): "auto" and
        # "vectorized" run tenant quanta through per-tenant
        # QuantumEngines sharing one NumaCacheBatch mirror.  A
        # non-integral remote_dram_delta falls back to the scalar loop
        # (batched int64 latency sums are only exact for integer
        # deltas); results are bit-identical either way.
        self._engine_mode = (
            "vectorized"
            if (
                config.resolve_engine() == "vectorized"
                and float(self.params.remote_dram_delta).is_integer()
            )
            else "scalar"
        )
        self._cache_batch: Optional[NumaCacheBatch] = None
        #: Engine diagnostics (fastpath.quantum_* metrics).
        self.quantum_runs = 0
        self.quantum_accesses = 0
        if self.obs is not None and self.obs.registry is not None:
            self.obs.registry.add_collector(self._collect_metrics)

    # -- tenant lifecycle ----------------------------------------------

    def _spawn_tenant(self, app: str, socket: int, phase: str) -> Tenant:
        """Build one tenant's system from the shared pools and home it."""
        index = self._next_index
        self._next_index += 1
        plan = (
            self.config.fault_plan.replicate()
            if self.config.fault_plan is not None
            else None
        )
        pool = SocketPoolAllocator(
            self.machine,
            cost_model=AllocationCostModel(),
            preferred_socket=socket,
            fault_plan=plan,
            recovery=self.config.recovery,
        )
        workload = get_workload(
            app, scale=self.config.scale, seed=self.config.seed + index
        )
        try:
            system = self._tenant_config.build(
                workload, allocator=pool, caches=self.caches, numa=self.machine
            )
        except MEHPTError:
            pool.release_all()
            raise
        process = Process(
            name=f"{app}#{index}",
            address_space=system.address_space,
            tlb=system.tlb,
            trace=workload.trace(self.trace_length, seed_offset=index),
            l2p=getattr(system.page_tables, "l2p", None),
        )
        tenant = Tenant(
            index, app, system, process, pool, socket,
            self.params.cores_per_socket,
        )
        self.tenants.append(tenant)
        if self._engine_mode == "vectorized":
            self._attach_engine(tenant)
        self._scan_units(tenant)
        self._emit_lifecycle(tenant, phase)
        return tenant

    def _attach_engine(self, tenant: Tenant) -> None:
        """Give the tenant a vectorized engine over the shared cache mirror.

        The organization (and thus walker geometry) is uniform across
        tenants, so an unsupported walker trips at the *first* spawn —
        before any quantum has run — and demotes the whole run to
        scalar quanta.
        """
        if self._cache_batch is None:
            try:
                self._cache_batch = NumaCacheBatch(self.caches)
            except ConfigurationError:
                self._engine_mode = "scalar"
                return
        engine = QuantumEngine(
            tenant.process, tenant.system,
            caches=self._cache_batch, machine=self.machine,
        )
        if not engine.supported:
            self._engine_mode = "scalar"
            self._cache_batch = None
            return
        tenant.engine = engine

    def _emit_lifecycle(self, tenant: Tenant, phase: str, **extra) -> None:
        if self.obs is not None:
            self.obs.advance_clock(int(self._clock))
            self.obs.emit(
                EVENT_PROCESS_LIFECYCLE,
                tenant=tenant.name, phase=phase, socket=tenant.socket,
                **extra,
            )

    def _exit_tenant(self, tenant: Tenant, reason: str) -> None:
        """Tear a tenant down: shootdown, unhome its units, free its pool."""
        if tenant.engine is not None:
            # Install the final TLB contents (finished and churn-killed
            # tenants alike) so post-run TLB state matches scalar runs.
            tenant.engine.finalize()
        cores = len(tenant.touched_cores)
        if self.replication.policy == "replicate":
            cores += self.machine.sockets - 1
        if self.obs is not None:
            self.obs.advance_clock(int(self._clock))
        self._clock += self.shootdown.broadcast(
            cores, reason, tenant.name, obs=self.obs
        )
        for base_line in tenant.units:
            self.machine.home_map.unregister(base_line)
        tenant.units.clear()
        tenant.pool.release_all()
        tenant.active = False
        self.exits += 1
        if self._current.get(tenant.socket) is tenant:
            self._current[tenant.socket] = None
        self._emit_lifecycle(tenant, "exit", reason=reason)

    def _churn(self) -> None:
        """Kill the oldest tenant; fork a replacement if budget remains."""
        living = [t for t in self.tenants if t.active]
        if len(living) < 2:
            return
        victim = living[0]
        self._exit_tenant(victim, "churn")
        if self.forks >= self.params.max_forks:
            return
        self.forks += 1
        try:
            self._spawn_tenant(victim.app, victim.socket, "fork")
        except MEHPTError:
            # The fork's table build could not be placed (pool pressure
            # or an injected abort): the fork is dropped, not the run.
            self.pool_alloc_failures += 1

    def _rebalance(self) -> None:
        """Rotate one tenant to the next socket (cross-socket pressure)."""
        if self.machine.sockets < 2:
            return
        living = [t for t in self.tenants if t.active]
        if not living:
            return
        tenant = living[self._rebalance_pick % len(living)]
        self._rebalance_pick += 1
        tenant.socket = (tenant.socket + 1) % self.machine.sockets

    # -- placement scanning --------------------------------------------

    def _iter_placements(self, tenant: Tenant) -> Iterator[Tuple[int, int, int, int]]:
        """All live placement units, allocating radix node backing lazily."""
        if self.config.organization == "radix":
            tables = tenant.system.page_tables
            stack = [tables.root]
            while stack:
                node = stack.pop()
                if node.addr not in tenant.node_handles:
                    # Back the node with a real frame from the shared
                    # pools so placement (and fault injection) is live.
                    tenant.node_handles[node.addr] = tenant.pool.alloc(PAGE_4K)
                yield (
                    node.addr // CACHE_LINE,
                    _NODE_LINES,
                    PAGE_4K,
                    tenant.node_handles[node.addr],
                )
                for child in node.entries.values():
                    if hasattr(child, "entries"):
                        stack.append(child)
        else:
            for placement in tenant.iter_storage_placements():
                yield placement

    def _scan_sig(self, tenant: Tenant) -> Tuple[int, int]:
        """Placement-change signature: pool epoch + radix node count.

        Every event that can add/move/remove a placement unit — table
        resizes, lazy radix node backing, pool frees at teardown — goes
        through the tenant's pool allocator (bumping ``alloc_epoch``) or
        grows the radix tree (bumping ``node_count``), so an unchanged
        signature means the last scan's registrations still hold.
        """
        return (
            tenant.pool.alloc_epoch,
            getattr(tenant.system.page_tables, "node_count", -1),
        )

    def _scan_units(self, tenant: Tenant) -> None:
        """Register new units, unregister stale ones (resize shootdown)."""
        if tenant.scan_sig == self._scan_sig(tenant):
            return
        live: Dict[int, Tuple[int, int, int]] = {}
        for base_line, n_lines, nbytes, handle in self._iter_placements(tenant):
            live[base_line] = (n_lines, nbytes, handle)
        stale = [base for base in tenant.units if base not in live]
        for base_line in stale:
            self.machine.home_map.unregister(base_line)
            del tenant.units[base_line]
        if stale:
            # A resize released old ways whose translations other cores
            # may cache: one batched shootdown per scan.
            if self.obs is not None:
                self.obs.advance_clock(int(self._clock))
            self._clock += self.shootdown.broadcast(
                len(tenant.touched_cores), "resize", tenant.name, obs=self.obs
            )
        for base_line, (n_lines, nbytes, handle) in live.items():
            if base_line in tenant.units:
                continue
            unit = PlacementUnit(
                base_line, n_lines, nbytes, tenant.pool.socket_of(handle)
            )
            self.machine.home_map.register(base_line, n_lines, unit.socket)
            self._clock += self.replication.on_unit_registered(unit)
            tenant.units[base_line] = unit
        # Record *after* the scan: the radix walk above may itself have
        # allocated node backing, bumping the pool epoch.
        tenant.scan_sig = self._scan_sig(tenant)

    def _migrate(self, tenant: Tenant) -> None:
        """Migrate-on-first-touch: re-home the tenant's units, once."""
        if self.obs is not None:
            self.obs.advance_clock(int(self._clock))
        before = self.replication.migrations
        self._clock += self.replication.migrate_units(
            tenant.units.values(), tenant.socket, tenant.name, obs=self.obs
        )
        if self.replication.migrations > before:
            self._clock += self.shootdown.broadcast(
                len(tenant.touched_cores), "migrate", tenant.name, obs=self.obs
            )
        tenant.table_home = tenant.socket

    # -- scheduling ----------------------------------------------------

    def _run_quantum(self, tenant: Tenant) -> None:
        self.machine.active_socket = tenant.socket
        tenant.pool.preferred_socket = tenant.socket
        tenant.touch()
        current = self._current.get(tenant.socket)
        if current is not tenant:
            base = self.switch_model.base_cycles
            cost = self.switch_model.switch_cost(
                current.process.l2p if current is not None else None,
                tenant.process.l2p,
            )
            self.switch_cycles += cost
            self.l2p_switch_cycles += cost - base
            self._clock += cost
            self._current[tenant.socket] = tenant
        if self.replication.policy == "migrate" and tenant.table_home != tenant.socket:
            self._migrate(tenant)
        if tenant.engine is not None:
            before = tenant.process.accesses_done
            cycles = tenant.engine.run_quantum(self.params.quantum)
            self.quantum_runs += 1
            self.quantum_accesses += tenant.process.accesses_done - before
        else:
            cycles = tenant.process.run_quantum(self.params.quantum)
        self.run_cycles += cycles
        self._clock += cycles
        # Sample the L2P *after* the quantum, when the table is
        # populated with this tenant's working set.
        if tenant.process.l2p is not None:
            self.l2p_samples.append(tenant.process.l2p.entries_used())
        self._scan_units(tenant)
        faults = tenant.process.address_space.totals.faults
        delta = faults - tenant.charged_faults
        tenant.charged_faults = faults
        self._clock += self.replication.on_faults(delta)
        if tenant.process.finished:
            self._exit_tenant(tenant, "exit")

    def run(self) -> DatacenterResult:
        """Run every tenant to completion; returns the aggregate result.

        Structured model failures (injected aborts that exhaust
        recovery, pool exhaustion at initial build) mark the result
        ``failed`` rather than raising, matching the sweep engine's
        record-everything contract.
        """
        if self.obs is not None:
            self.obs.emit(
                EVENT_RUN_START,
                model="datacenter",
                organization=self.config.organization,
                policy=self.params.policy,
                sockets=self.params.sockets,
                processes=self.params.processes,
            )
        try:
            for i in range(self.params.processes):
                self._spawn_tenant(
                    self.apps[i % len(self.apps)],
                    i % self.params.sockets,
                    "spawn",
                )
            step = 0
            while True:
                living = [t for t in self.tenants if t.active]
                if not living:
                    break
                for tenant in living:
                    if not tenant.active:
                        continue  # churned out earlier this round
                    step += 1
                    self._run_quantum(tenant)
                    if (
                        self.params.churn_every
                        and step % self.params.churn_every == 0
                    ):
                        self._churn()
                    if (
                        self.params.rebalance_every
                        and step % self.params.rebalance_every == 0
                    ):
                        self._rebalance()
        except MEHPTError as exc:
            self.failed = True
            self.failure_reason = f"{type(exc).__name__}: {exc}"
        return self._result()

    # -- reporting -----------------------------------------------------

    def total_cycles(self) -> float:
        """Quanta + switches + shootdowns + replication + migration."""
        return (
            self.run_cycles
            + self.switch_cycles
            + self.shootdown.cycles
            + self.replication.replication_cycles
            + self.replication.migration_cycles
        )

    def _collect_metrics(self, registry) -> None:
        machine = self.machine
        for socket in range(machine.sockets):
            registry.counter("numa.walks", socket=socket).set_total(
                machine.walks_by_socket[socket]
            )
            registry.counter("numa.walk_cycles", socket=socket).set_total(
                machine.walk_cycles_by_socket[socket]
            )
        registry.counter("numa.local_dram_accesses").set_total(
            machine.local_dram_accesses
        )
        registry.counter("numa.remote_dram_accesses").set_total(
            machine.remote_dram_accesses
        )
        registry.counter("numa.remote_delta_cycles").set_total(
            machine.remote_delta_cycles
        )
        registry.counter("numa.pool_spill_allocations").set_total(
            machine.spill_allocations
        )
        registry.counter("numa.replicated_bytes").set_total(
            self.replication.replicated_bytes
        )
        registry.counter("numa.replica_updates").set_total(
            self.replication.replica_updates
        )
        registry.counter("numa.migrated_bytes").set_total(
            self.replication.migrated_bytes
        )
        registry.counter("dc.shootdowns").set_total(self.shootdown.shootdowns)
        registry.counter("dc.shootdown_ipis").set_total(self.shootdown.ipis)
        registry.counter("dc.shootdown_cycles").set_total(self.shootdown.cycles)
        registry.counter("dc.context_switches").set_total(
            self.switch_model.switches
        )
        registry.counter("dc.forks").set_total(self.forks)
        registry.counter("dc.exits").set_total(self.exits)
        registry.counter("dc.pool_alloc_failures").set_total(
            self.pool_alloc_failures
        )
        if self._engine_mode == "vectorized":
            registry.counter("fastpath.quantum_runs").set_total(
                self.quantum_runs
            )
            registry.counter("fastpath.quantum_accesses").set_total(
                self.quantum_accesses
            )
            if self._cache_batch is not None:
                registry.counter("numa.batch_dram_probes").set_total(
                    self._cache_batch.batch_dram_probes
                )
                registry.counter("numa.batch_snapshot_rebuilds").set_total(
                    self._cache_batch.snapshot_rebuilds
                )

    def _result(self) -> DatacenterResult:
        if self._cache_batch is not None:
            # Deferred NUMA DRAM accounting must land on the machine
            # before the result fields below read it.
            self._cache_batch.write_back()
        total = self.total_cycles()
        result = DatacenterResult(
            organization=self.config.organization,
            policy=self.params.policy,
            sockets=self.params.sockets,
            processes=self.params.processes,
            cores_per_socket=self.params.cores_per_socket,
            tenants_spawned=self._next_index,
            total_cycles=total,
            run_cycles=self.run_cycles,
            switches=self.switch_model.switches,
            switch_cycles=self.switch_cycles,
            l2p_switch_cycles=self.l2p_switch_cycles,
            mean_l2p_entries=(
                sum(self.l2p_samples) / len(self.l2p_samples)
                if self.l2p_samples
                else 0.0
            ),
            shootdowns=self.shootdown.shootdowns,
            shootdown_ipis=self.shootdown.ipis,
            shootdown_cycles=self.shootdown.cycles,
            replicated_bytes=self.replication.replicated_bytes,
            replica_updates=self.replication.replica_updates,
            replication_cycles=self.replication.replication_cycles,
            migrations=self.replication.migrations,
            migrated_units=self.replication.migrated_units,
            migrated_bytes=self.replication.migrated_bytes,
            migration_cycles=self.replication.migration_cycles,
            walks_by_socket=list(self.machine.walks_by_socket),
            walk_cycles_by_socket=list(self.machine.walk_cycles_by_socket),
            local_dram_accesses=self.machine.local_dram_accesses,
            remote_dram_accesses=self.machine.remote_dram_accesses,
            remote_delta_cycles=self.machine.remote_delta_cycles,
            spill_allocations=self.machine.spill_allocations,
            pool_alloc_failures=self.pool_alloc_failures,
            accesses=sum(t.process.accesses_done for t in self.tenants),
            faults=sum(
                t.process.address_space.totals.faults for t in self.tenants
            ),
            forks=self.forks,
            exits=self.exits,
            failed=self.failed,
            failure_reason=self.failure_reason,
        )
        if self.obs is not None:
            self.obs.advance_clock(int(self._clock))
            self.obs.emit(
                EVENT_RUN_END,
                model="datacenter",
                total_cycles=total,
                shootdowns=self.shootdown.shootdowns,
                forks=self.forks,
                exits=self.exits,
            )
            # Engine diagnostics (fastpath.quantum_*/numa.batch_*) are
            # stripped from the snapshot: cached sweep cells must stay
            # byte-identical regardless of the engine that produced
            # them (the engine knob is absent from cache keys).
            result.metrics = {
                name: record
                for name, record in self.obs.snapshot_metrics().items()
                if not name.startswith(("fastpath.quantum_", "numa.batch_"))
            }
            self.obs.close()
        return result
