"""Multi-tenant NUMA datacenter model (sockets, shootdowns, replication).

The subsystem behind the ``datacenter`` experiment kind:

* :mod:`repro.sim.datacenter.topology` — the :class:`Machine` (per-socket
  fragmented buddy pools, line homing, NUMA DRAM accounting), the
  per-tenant :class:`SocketPoolAllocator`, and the shared
  :class:`NumaCacheHierarchy`;
* :mod:`repro.sim.datacenter.shootdown` — numaPTE-style TLB-shootdown
  cycle accounting;
* :mod:`repro.sim.datacenter.replication` — Mitosis-style
  ``none | replicate | migrate`` page-table placement policies;
* :mod:`repro.sim.datacenter.simulator` — tenants, churn, the per-socket
  scheduler, and :class:`DatacenterSimulator` itself;
* :mod:`repro.sim.datacenter.results` — the JSON-safe
  :class:`DatacenterResult` registered with the sweep-engine codec.

Import note: :mod:`repro.sim.results` imports ``DatacenterResult`` from
this package, so nothing here may import :mod:`repro.sim.results` or
:mod:`repro.experiments`.
"""

from repro.sim.datacenter.replication import POLICIES, PlacementUnit, ReplicationEngine
from repro.sim.datacenter.results import DatacenterResult
from repro.sim.datacenter.shootdown import ShootdownModel
from repro.sim.datacenter.simulator import (
    DC_PREFIX,
    DatacenterParams,
    DatacenterSimulator,
    Tenant,
    split_overrides,
)
from repro.sim.datacenter.topology import (
    ALL_SOCKETS,
    LineHomeMap,
    Machine,
    NumaCacheHierarchy,
    SocketPoolAllocator,
)

__all__ = [
    "ALL_SOCKETS",
    "DC_PREFIX",
    "DatacenterParams",
    "DatacenterResult",
    "DatacenterSimulator",
    "LineHomeMap",
    "Machine",
    "NumaCacheHierarchy",
    "POLICIES",
    "PlacementUnit",
    "ReplicationEngine",
    "ShootdownModel",
    "SocketPoolAllocator",
    "Tenant",
    "split_overrides",
]
