"""Mitosis-style page-table replication and migration policies.

Three policies decide where a tenant's page-table memory lives relative
to the socket it runs on:

``none``
    Tables stay where the buddy pool placed them; walks from another
    socket pay the remote-DRAM delta on every probe miss.
``replicate``
    Every placement unit is copied to all other sockets up front
    (home becomes :data:`~repro.sim.datacenter.topology.ALL_SOCKETS`,
    so walks are always local) and every fault-driven PTE change is
    mirrored into the remote copies.  The copy and update bills scale
    with the *number and size of units* — which is exactly where ME-HPT
    (a handful of chunks) and radix (one 4KB node per 2MB of mapped VA)
    diverge.
``migrate``
    Migrate-on-first-touch: when the scheduler moves a tenant to a new
    socket, its units are re-homed there in one batch (charged per line
    moved, plus one shootdown for the stale translations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.obs.trace import EVENT_PT_MIGRATION
from repro.sim.datacenter.topology import ALL_SOCKETS, Machine

#: The replication policies, in report order.
POLICIES = ("none", "replicate", "migrate")

#: Cycles to copy one 64B page-table line to one replica socket.
REPLICA_COPY_LINE_CYCLES = 8.0
#: Cycles to mirror one PTE update into one remote replica.
REPLICA_UPDATE_CYCLES = 40.0
#: Cycles to move one line across the interconnect on migration.
MIGRATE_LINE_CYCLES = 8.0


@dataclass
class PlacementUnit:
    """One independently-placed page-table region (way, chunk, or node)."""

    base_line: int
    n_lines: int
    nbytes: int
    socket: int


class ReplicationEngine:
    """Applies one policy's placement rules and accumulates its bill."""

    def __init__(self, policy: str, machine: Machine) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown replication policy {policy!r}; pick from {POLICIES}"
            )
        self.policy = policy
        self.machine = machine
        self.replicated_bytes = 0
        self.replica_updates = 0
        self.replication_cycles = 0.0
        self.migrations = 0
        self.migrated_units = 0
        self.migrated_bytes = 0
        self.migration_cycles = 0.0

    def on_unit_registered(self, unit: PlacementUnit) -> float:
        """Charge the policy's placement cost for a new unit.

        Under ``replicate`` the unit is copied to every other socket and
        homed everywhere; the returned cycles are the copy bill (zero
        for the other policies).
        """
        replicas = self.machine.sockets - 1
        if self.policy != "replicate" or replicas == 0:
            return 0.0
        self.machine.home_map.set_home(unit.base_line, ALL_SOCKETS)
        unit.socket = ALL_SOCKETS
        self.replicated_bytes += unit.nbytes * replicas
        cycles = unit.n_lines * REPLICA_COPY_LINE_CYCLES * replicas
        self.replication_cycles += cycles
        return cycles

    def on_faults(self, count: int) -> float:
        """Charge mirroring ``count`` PTE updates into the replicas."""
        replicas = self.machine.sockets - 1
        if self.policy != "replicate" or replicas == 0 or count <= 0:
            return 0.0
        updates = count * replicas
        self.replica_updates += updates
        cycles = updates * REPLICA_UPDATE_CYCLES
        self.replication_cycles += cycles
        return cycles

    def migrate_units(self, units, to_socket: int, tenant: str, obs=None) -> float:
        """Re-home every unit not already on ``to_socket``; returns cycles.

        Emits one ``pt_migration`` event per batch (not per unit) so
        traces stay bounded by scheduler decisions, not table size.
        """
        moved = 0
        moved_bytes = 0
        cycles = 0.0
        for unit in units:
            if unit.socket in (to_socket, ALL_SOCKETS):
                continue
            self.machine.home_map.set_home(unit.base_line, to_socket)
            unit.socket = to_socket
            moved += 1
            moved_bytes += unit.nbytes
            cycles += unit.n_lines * MIGRATE_LINE_CYCLES
        if moved:
            self.migrations += 1
            self.migrated_units += moved
            self.migrated_bytes += moved_bytes
            self.migration_cycles += cycles
            if obs is not None:
                obs.emit(
                    EVENT_PT_MIGRATION,
                    tenant=tenant, to_socket=to_socket,
                    units=moved, bytes=moved_bytes, cycles=cycles,
                )
        return cycles
