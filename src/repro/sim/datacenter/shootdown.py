"""TLB-shootdown cost model (numaPTE-style accounting).

Any operation that invalidates translations other cores may cache —
tenant teardown (unmap), page-table migration, and batched replica
updates — broadcasts IPIs to every core that ever ran the address
space.  The initiator pays a fixed setup cost plus a per-IPI delivery
cost; replicated address spaces additionally interrupt one core per
remote replica socket to patch the copies.
"""

from __future__ import annotations

from repro.obs.trace import EVENT_TLB_SHOOTDOWN

#: Cycles the initiating core spends setting up one broadcast.
INITIATOR_CYCLES = 4000.0
#: Cycles charged per IPI delivered (send + remote invalidation + ack).
PER_IPI_CYCLES = 1200.0


class ShootdownModel:
    """Accumulates shootdown broadcasts and their cycle bill."""

    def __init__(
        self,
        initiator_cycles: float = INITIATOR_CYCLES,
        per_ipi_cycles: float = PER_IPI_CYCLES,
    ) -> None:
        self.initiator_cycles = initiator_cycles
        self.per_ipi_cycles = per_ipi_cycles
        self.shootdowns = 0
        self.ipis = 0
        self.cycles = 0.0

    def broadcast(self, cores: int, reason: str, tenant: str, obs=None) -> float:
        """Charge one broadcast to ``cores`` responders; returns cycles.

        ``reason`` is one of ``exit`` / ``churn`` / ``migrate`` /
        ``resize`` / ``replica_update`` and lands in the
        ``tlb_shootdown`` trace event for attribution.
        """
        cost = self.initiator_cycles + self.per_ipi_cycles * cores
        self.shootdowns += 1
        self.ipis += cores
        self.cycles += cost
        if obs is not None:
            obs.emit(
                EVENT_TLB_SHOOTDOWN,
                tenant=tenant, reason=reason, cores=cores, cycles=cost,
            )
        return cost
