"""Result container for one multi-tenant NUMA datacenter run.

:class:`DatacenterResult` is deliberately dependency-free (stdlib
dataclasses only) so :mod:`repro.sim.results` can register it with the
sweep engine's record codec without an import cycle, and every field is
a native JSON type so cached cells round-trip the disk cache bit-exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List


@dataclass
class DatacenterResult:
    """Aggregate outcome of one sockets × tenants × policy run.

    Cycle totals decompose as ``total_cycles = run_cycles +
    switch_cycles + shootdown_cycles + replication_cycles +
    migration_cycles`` — the last three are the NUMA taxes the
    experiment compares across page-table organizations.
    """

    organization: str
    policy: str
    sockets: int
    processes: int
    cores_per_socket: int
    #: Tenants ever spawned (initial set + churn forks).
    tenants_spawned: int = 0
    total_cycles: float = 0.0
    run_cycles: float = 0.0
    switches: int = 0
    switch_cycles: float = 0.0
    l2p_switch_cycles: float = 0.0
    mean_l2p_entries: float = 0.0
    shootdowns: int = 0
    shootdown_ipis: int = 0
    shootdown_cycles: float = 0.0
    replicated_bytes: int = 0
    replica_updates: int = 0
    replication_cycles: float = 0.0
    migrations: int = 0
    migrated_units: int = 0
    migrated_bytes: int = 0
    migration_cycles: float = 0.0
    walks_by_socket: List[int] = field(default_factory=list)
    walk_cycles_by_socket: List[float] = field(default_factory=list)
    local_dram_accesses: int = 0
    remote_dram_accesses: int = 0
    remote_delta_cycles: float = 0.0
    spill_allocations: int = 0
    pool_alloc_failures: int = 0
    accesses: int = 0
    faults: int = 0
    forks: int = 0
    exits: int = 0
    failed: bool = False
    failure_reason: str = ""
    #: JSON-safe registry snapshot (empty when observability is off).
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def walks(self) -> int:
        """Total page walks across all sockets."""
        return sum(self.walks_by_socket)

    def replication_overhead(self) -> float:
        """Replication + migration + shootdown share of total cycles."""
        if not self.total_cycles:
            return 0.0
        tax = (
            self.shootdown_cycles
            + self.replication_cycles
            + self.migration_cycles
        )
        return tax / self.total_cycles

    def remote_dram_fraction(self) -> float:
        """Fraction of walk DRAM accesses that crossed the interconnect."""
        dram = self.local_dram_accesses + self.remote_dram_accesses
        return self.remote_dram_accesses / dram if dram else 0.0

    def switch_overhead(self) -> float:
        """Context-switch share of total cycles."""
        return self.switch_cycles / self.total_cycles if self.total_cycles else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of every field (dataclass ``asdict``)."""
        return asdict(self)
