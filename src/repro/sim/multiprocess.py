"""Multi-process scheduling simulation: context-switch costs (Section V-C).

The one new cost ME-HPT adds to a context switch is saving/restoring the
MMU-resident L2P table — only its *valid* entries, which average ~53 per
process in the paper, so the overhead is a few hundred cycles against a
switch that already costs thousands.  In a virtualized system even that
disappears (guests have no L2P; the host table is not switched).

:class:`MultiProcessSimulator` runs N processes round-robin with a fixed
quantum, charges per-switch costs through
:class:`~repro.kernel.context.ContextSwitchModel`, and reports the share
of total cycles the L2P movement adds — making the paper's "modest
overhead" claim checkable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.kernel.context import ContextSwitchModel
from repro.kernel.process import Process
from repro.sim.config import SimulationConfig
from repro.sim.quantum import QuantumEngine
from repro.workloads import get_workload


@dataclass
class MultiProcessResult:
    """Outcome of one multi-process run."""

    organization: str
    processes: int
    switches: int
    total_cycles: float
    switch_cycles: float
    l2p_switch_cycles: float
    mean_l2p_entries: float

    def switch_overhead(self) -> float:
        return self.switch_cycles / self.total_cycles if self.total_cycles else 0.0

    def l2p_overhead(self) -> float:
        return self.l2p_switch_cycles / self.total_cycles if self.total_cycles else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe field dump (reports, tests, ad-hoc tooling)."""
        return asdict(self)


class MultiProcessSimulator:
    """Round-robin execution of several workloads, each its own process."""

    def __init__(
        self,
        apps: List[str],
        config: SimulationConfig,
        trace_length: int = 30_000,
        quantum: int = 2_000,
        switch_model: Optional[ContextSwitchModel] = None,
    ) -> None:
        if not apps:
            raise ConfigurationError("need at least one process")
        if quantum < 1:
            raise ConfigurationError("quantum must be positive")
        self.config = config
        self.quantum = quantum
        self.switch_model = switch_model if switch_model is not None else ContextSwitchModel()
        self.processes: List[Process] = []
        self._systems = []
        for index, app in enumerate(apps):
            workload = get_workload(app, scale=config.scale, seed=config.seed + index)
            system = config.build(workload)
            self._systems.append(system)
            l2p = getattr(system.page_tables, "l2p", None)
            self.processes.append(
                Process(
                    name=f"{app}#{index}",
                    address_space=system.address_space,
                    tlb=system.tlb,
                    trace=workload.trace(trace_length, seed_offset=index),
                    l2p=l2p,
                )
            )
        # Engine selection (SimulationConfig.engine): per-process
        # vectorized quantum engines with private cache mirrors.  Traced
        # runs keep the scalar loop — per-access event synthesis under
        # round-robin scheduling is not implemented here — and so does
        # any walker/cache geometry without a batched implementation.
        self._engines: Dict[int, QuantumEngine] = {}
        if config.resolve_engine() == "vectorized" and not config.tracing_enabled():
            engines = {
                i: QuantumEngine(process, system)
                for i, (process, system) in enumerate(
                    zip(self.processes, self._systems)
                )
            }
            if all(engine.supported for engine in engines.values()):
                self._engines = engines

    def _run_quantum(self, index: int, process: Process) -> float:
        """One quantum through the selected engine."""
        engine = self._engines.get(index)
        if engine is not None:
            return engine.run_quantum(self.quantum)
        return process.run_quantum(self.quantum)

    def run(self) -> MultiProcessResult:
        """Run every process to completion; return aggregate costs."""
        total_cycles = 0.0
        switch_cycles = 0.0
        l2p_cycles = 0.0
        l2p_samples: List[int] = []
        current: Optional[Process] = None
        index_of = {id(p): i for i, p in enumerate(self.processes)}
        runnable = [p for p in self.processes if not p.finished]
        while runnable:
            for process in list(runnable):
                if current is not process:
                    base = self.switch_model.base_cycles
                    cost = self.switch_model.switch_cost(
                        current.l2p if current is not None else None,
                        process.l2p,
                    )
                    switch_cycles += cost
                    l2p_cycles += cost - base
                    current = process
                total_cycles += self._run_quantum(index_of[id(process)], process)
                # Sample after the quantum: the entries the process has
                # actually populated are what the next switch must save.
                # (Sampling before the first quantum reads a cold L2P
                # and biases the mean low.)
                if process.l2p is not None:
                    l2p_samples.append(process.l2p.entries_used())
            runnable = [p for p in self.processes if not p.finished]
        total_cycles += switch_cycles
        return MultiProcessResult(
            organization=self.config.organization,
            processes=len(self.processes),
            switches=self.switch_model.switches,
            total_cycles=total_cycles,
            switch_cycles=switch_cycles,
            l2p_switch_cycles=l2p_cycles,
            mean_l2p_entries=(
                sum(l2p_samples) / len(l2p_samples) if l2p_samples else 0.0
            ),
        )
