#!/usr/bin/env python
"""Rebuild the checked-in adversarial reproducer corpus (``corpus/``).

Runs every preset scenario at seed 0, minimizes the prefix-triggered
abort failures, classifies each stored trace across all three
organizations with the divergence check on (exactly what
``python -m repro.fuzz replay-corpus`` will later re-assert), and
rewrites ``corpus/manifest.json``.

The whole pipeline is deterministic, so re-running this script on an
unchanged simulator produces a byte-identical corpus; a diff after a
simulator change is a *finding* (the corpus caught a behavior shift).

Usage::

    PYTHONPATH=src python tools/build_corpus.py [--corpus corpus]
"""

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fuzz.corpus import add_entry  # noqa: E402
from repro.fuzz.minimize import minimize_trace  # noqa: E402
from repro.fuzz.runner import CLASS_OK, run_scenario  # noqa: E402
from repro.fuzz.scenario import make_preset, preset_names  # noqa: E402

#: preset -> (minimize?, orgs to minimize over).  Prefix-triggered aborts
#: minimize well; cycle-blowup classes are ratio-based and only stable at
#: their full trace length, so those entries stay unminimized.
MINIMIZE = {
    "frag-storm": ("ecpt",),
    "l2p-ladder": ("mehpt",),
    "planted-fault": ("ecpt",),
}


def build(corpus_dir: str) -> int:
    workdir = tempfile.mkdtemp(prefix="corpus-build-")
    built = 0
    for name in preset_names():
        scenario = make_preset(name, seed=0)
        trace = os.path.join(workdir, f"{name}.vpt")
        scenario.generate_trace(trace)
        outcome = run_scenario(scenario, trace_path=trace)
        print(outcome.summary())
        if outcome.failure_class == CLASS_OK:
            print(f"  {name}: no finding at seed 0, skipped")
            continue

        stored = trace
        notes = f"full {scenario.trace_length}-record trace (ratio-based class)"
        if name in MINIMIZE:
            orgs = MINIMIZE[name]
            narrow = run_scenario(
                scenario, trace_path=trace, orgs=orgs, probe_downsize=False,
            )
            stored = os.path.join(workdir, f"{name}-min.vpt")
            result = minimize_trace(
                scenario, trace, narrow.failure_class, stored, orgs=orgs,
            )
            notes = f"minimized over {','.join(orgs)}: {result.summary()}"
            print(f"  {result.summary()}")

        # The manifest records what the stored trace does across ALL
        # organizations with the divergence check on — the exact replay
        # contract CI re-asserts.
        replay = run_scenario(
            scenario, trace_path=stored, check_divergence=True,
            probe_downsize=False,
        )
        entry = add_entry(
            corpus_dir, f"{name}-seed0", stored, scenario,
            replay.failure_class, replay.affected_orgs, notes=notes,
        )
        print(
            f"  corpus: {entry.name} = {entry.failure_class} "
            f"affected={entry.affected_orgs} ({entry.records} records)"
        )
        built += 1
    print(f"{built} corpus entries written to {corpus_dir}/")
    return 0 if built else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus", default="corpus", help="output directory")
    args = parser.parse_args()
    return build(args.corpus)


if __name__ == "__main__":
    sys.exit(main())
