#!/usr/bin/env python3
"""Documentation gates for CI — stdlib only, no third-party tools.

Three checks (run all with ``all``):

``coverage``
    AST-based public docstring coverage over ``src/repro``: every module,
    public class, and public function/method counts one slot; the check
    fails when the documented fraction drops below ``--min`` (CI pins the
    baseline so coverage can only ratchet up).

``obs-docs``
    Two-way consistency between ``OBSERVABILITY.md`` and the code: every
    metric in the doc's "Metric catalogue" table must exist in
    ``repro.obs.metrics.CATALOGUE`` and vice versa, and every event kind
    in the "Event schema" table must exist in ``repro.obs.trace`` and
    vice versa.  Documentation that drifts from the registry fails CI.

``serving-docs``
    Two-way consistency between ``SERVING.md`` and the service: every
    endpoint in the doc's "Endpoints" table must exist in
    ``repro.serve.server.ROUTES`` and vice versa, and every event type
    in the "Event stream" table must exist in
    ``repro.serve.protocol.EVENT_TYPES`` and vice versa.

Usage::

    python tools/doccheck.py coverage --min 90.0 [--verbose]
    python tools/doccheck.py obs-docs
    python tools/doccheck.py serving-docs
    python tools/doccheck.py all --min 90.0
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from typing import Dict, List, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")
OBS_DOC = os.path.join(REPO_ROOT, "OBSERVABILITY.md")
SERVING_DOC = os.path.join(REPO_ROOT, "SERVING.md")

#: A documentable name is public when no path component is dunder/private
#: (``_helper``; ``__init__`` and friends are implementation detail).
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


# -- docstring coverage ----------------------------------------------------


def iter_py_files(root: str) -> List[str]:
    """Every ``.py`` file under ``root``, sorted for stable output."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in filenames:
            if name.endswith(".py"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def file_coverage(path: str) -> Tuple[int, int, List[str]]:
    """(slots, documented, missing-qualnames) for one source file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    rel = os.path.relpath(path, REPO_ROOT)
    slots = 1
    documented = 0
    missing: List[str] = []
    if ast.get_docstring(tree) is not None:
        documented += 1
    else:
        missing.append(f"{rel}: module")

    def visit(body, prefix: str) -> None:
        nonlocal slots, documented
        for node in body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not _is_public(node.name):
                    continue
                slots += 1
                if ast.get_docstring(node) is not None:
                    documented += 1
                else:
                    missing.append(f"{rel}:{node.lineno} {prefix}{node.name}")
                if isinstance(node, ast.ClassDef):
                    visit(node.body, f"{prefix}{node.name}.")

    visit(tree.body, "")
    return slots, documented, missing


def cmd_coverage(minimum: float, verbose: bool) -> int:
    """Gate public docstring coverage of ``src/repro`` at ``minimum`` %."""
    total = documented = 0
    missing: List[str] = []
    for path in iter_py_files(SRC_ROOT):
        file_slots, file_documented, file_missing = file_coverage(path)
        total += file_slots
        documented += file_documented
        missing.extend(file_missing)
    pct = 100.0 * documented / total if total else 100.0
    print(
        f"docstring coverage: {documented}/{total} public slots "
        f"({pct:.1f}%), floor {minimum:.1f}%"
    )
    if verbose or pct < minimum:
        for entry in missing:
            print(f"  undocumented: {entry}")
    if pct < minimum:
        print(f"FAIL: coverage {pct:.1f}% is below the {minimum:.1f}% floor")
        return 1
    return 0


# -- OBSERVABILITY.md consistency ------------------------------------------


def doc_table_names(doc_path: str, section: str) -> Set[str]:
    """Backticked names from the first column of ``section``'s table.

    ``section`` is matched against ``##``-level headings; scanning stops
    at the next heading.  Only table rows (lines starting with ``|``)
    contribute, so prose mentions never count as catalogue entries.
    """
    names: Set[str] = set()
    in_section = False
    with open(doc_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("##"):
                in_section = line.lstrip("#").strip().lower() == section.lower()
                continue
            if not in_section or not line.lstrip().startswith("|"):
                continue
            first_cell = line.lstrip().lstrip("|").split("|", 1)[0]
            for token in re.findall(r"`([^`]+)`", first_cell):
                names.add(token)
    return names


def _diff(kind: str, documented: Set[str], actual: Set[str]) -> List[str]:
    problems = []
    for name in sorted(documented - actual):
        problems.append(f"{kind} `{name}` is documented but not defined in code")
    for name in sorted(actual - documented):
        problems.append(f"{kind} `{name}` is defined in code but not documented")
    return problems


def cmd_obs_docs() -> int:
    """Check OBSERVABILITY.md against the metric catalogue and event kinds."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.obs.metrics import CATALOGUE
    from repro.obs.trace import ALL_KINDS

    if not os.path.exists(OBS_DOC):
        print(f"FAIL: {OBS_DOC} does not exist")
        return 1
    problems = _diff(
        "metric", doc_table_names(OBS_DOC, "Metric catalogue"), set(CATALOGUE)
    )
    problems += _diff(
        "event", doc_table_names(OBS_DOC, "Event schema"), set(ALL_KINDS)
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"OBSERVABILITY.md is consistent: {len(CATALOGUE)} metrics, "
        f"{len(ALL_KINDS)} event kinds"
    )
    return 0


def cmd_serving_docs() -> int:
    """Check SERVING.md against the service's routes and event types."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.protocol import EVENT_TYPES
    from repro.serve.server import ROUTES

    if not os.path.exists(SERVING_DOC):
        print(f"FAIL: {SERVING_DOC} does not exist")
        return 1
    actual_routes = {f"{method} {path}" for method, path in ROUTES}
    problems = _diff(
        "endpoint", doc_table_names(SERVING_DOC, "Endpoints"), actual_routes
    )
    problems += _diff(
        "event type",
        doc_table_names(SERVING_DOC, "Event stream"),
        set(EVENT_TYPES),
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"SERVING.md is consistent: {len(ROUTES)} endpoints, "
        f"{len(EVENT_TYPES)} event types"
    )
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "check", choices=["coverage", "obs-docs", "serving-docs", "all"]
    )
    parser.add_argument(
        "--min",
        type=float,
        default=90.0,
        help="minimum docstring coverage percent (default 90)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list undocumented slots"
    )
    args = parser.parse_args(argv)
    status = 0
    if args.check in ("coverage", "all"):
        status |= cmd_coverage(args.min, args.verbose)
    if args.check in ("obs-docs", "all"):
        status |= cmd_obs_docs()
    if args.check in ("serving-docs", "all"):
        status |= cmd_serving_docs()
    return status


if __name__ == "__main__":
    sys.exit(main())
