#!/usr/bin/env python3
"""Serving walkthrough: the whole repro.serve surface against a
throwaway server.

This boots a private server on an ephemeral port (small queue, two
worker shards, its own cache and spool directories under a temp dir)
and walks every part of the wire contract SERVING.md documents:

1. health check and queue introspection,
2. upload a corpus `.vpt` reproducer, get its content-addressed handle,
3. replay it against ME-HPT and ECPT, streaming NDJSON events live,
4. priorities: an interactive job overtakes queued batch jobs,
5. back-pressure: saturate the queue, get a 429 and a retry-after hint,
   then resubmit politely with ``submit_with_retry``,
6. cancellation: reap a running worker mid-job and watch it respawn,
7. scrape ``/metrics`` for the ``serve_*`` series this session produced,

then SIGTERMs the server and waits for the graceful drain.

Run:  PYTHONPATH=src python examples/serving_client.py
"""

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve.client import ServeClient, ServeClientError
from repro.sim.results import result_from_record

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CORPUS_TRACE = REPO_ROOT / "corpus" / "churn-oscillation-seed0.vpt"

# Small enough that every cell is sub-second; the corpus trace holds
# 12000 records, so a 6000-record replay never hits the end.
FAST_SETTINGS = {"scale": 1024, "trace_length": 6000}


def boot_server(workdir: pathlib.Path) -> "tuple[subprocess.Popen, int]":
    """Start ``python -m repro.serve`` on an ephemeral port.

    The tiny queue (4 total, 2 per client) is deliberate: it makes the
    back-pressure section of the walkthrough trip a real 429.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--port", "0",
         "--shards", "2",
         "--queue-capacity", "4",
         "--per-client-capacity", "2",
         "--cache-dir", str(workdir / "cache"),
         "--spool-dir", str(workdir / "spool")],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    # The boot line is "repro.serve listening on http://127.0.0.1:PORT".
    line = process.stdout.readline().strip()
    port = int(line.rsplit(":", 1)[1])
    print(f"booted: {line}")
    return process, port


def show(event: dict) -> None:
    """One-line rendering of a streamed NDJSON event."""
    print(f"  << {json.dumps(event, sort_keys=True)[:120]}")


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="serving-example-"))
    process, port = boot_server(workdir)
    client = ServeClient(port=port, timeout=120)
    try:
        # -- 1. liveness and queue introspection -----------------------
        print("\n[1] health + queue")
        print("  health:", json.dumps(client.health(), sort_keys=True)[:100])
        print("  queue: ", json.dumps(client.queue(), sort_keys=True)[:100])

        # -- 2. upload a corpus reproducer -----------------------------
        print("\n[2] upload a .vpt trace (content-addressed)")
        upload = client.upload_trace(str(CORPUS_TRACE))
        print(f"  {CORPUS_TRACE.name}: {upload['records']} records"
              f" -> {upload['trace']}")
        again = client.upload_trace(str(CORPUS_TRACE))
        assert again["trace"] == upload["trace"], "uploads are idempotent"
        print("  re-upload returned the same handle (idempotent)")

        # -- 3. replay it, streaming events ----------------------------
        print("\n[3] replay against ME-HPT and ECPT, streamed live")
        terminal, results = client.run({
            "kind": "perf",
            "cells": [{"app": upload["trace"], "organization": org,
                       "thp": False}
                      for org in ("mehpt", "ecpt")],
            "settings": FAST_SETTINGS,
            "client": "walkthrough",
        }, on_event=show)
        assert terminal["event"] == "done", terminal
        for entry in results:
            result = result_from_record(entry["result"])
            print(f"  {entry['cell'][1]:>6}: "
                  f"cycles/access {result.cycles_per_access():.2f}")

        # -- 4. priorities: interactive overtakes batch ----------------
        print("\n[4] priority: an interactive job jumps the batch queue")
        # Occupy both shards with staggered blockers: the first frees a
        # shard after 2s (one dispatch decision), the second holds its
        # shard long enough that the batch job must keep waiting.
        blockers = [client.submit({
            "kind": "selftest", "duration_seconds": seconds,
            "client": f"blocker-{i}", "priority": 2,
        }) for i, seconds in enumerate((2.0, 6.0))]
        batch = client.submit({
            "kind": "perf",
            "cells": [{"app": "GUPS", "organization": "radix"}],
            "settings": FAST_SETTINGS,
            "client": "batch", "priority": 2,
        })
        interactive = client.submit({
            "kind": "perf",
            "cells": [{"app": "GUPS", "organization": "mehpt"}],
            "settings": FAST_SETTINGS,
            "client": "interactive", "priority": 0,
        })
        terminal, _ = client.wait(interactive["job"])
        batch_status = client.status(batch["job"])["status"]
        print(f"  interactive finished ({terminal['event']}) while the "
              f"earlier-submitted batch job is still '{batch_status}'")
        client.wait(batch["job"])
        for blocker in blockers:
            client.wait(blocker["job"])

        # -- 5. back-pressure: saturate, 429, polite retry -------------
        print("\n[5] back-pressure: fill the queue until it pushes back")
        holders = [client.submit({
            "kind": "selftest", "duration_seconds": 1.5,
            "client": f"holder-{i}",
        }) for i in range(6)]            # 2 running + 4 queued = full
        try:
            client.submit({"kind": "selftest", "duration_seconds": 0.1,
                           "client": "late"})
            raise AssertionError("expected a 429")
        except ServeClientError as exc:
            hint = exc.context["retry_after_seconds"]
            print(f"  429 {exc.context['reason']}: retry in {hint:.1f}s")
        receipt = client.submit_with_retry(
            {"kind": "selftest", "duration_seconds": 0.1, "client": "late"})
        print(f"  submit_with_retry slept and got {receipt['job']} admitted")
        for held in holders + [receipt]:
            client.wait(held["job"])

        # -- 6. cancellation reaps the worker --------------------------
        print("\n[6] cancel a running job; its worker is reaped")
        doomed = client.submit({"kind": "selftest", "duration_seconds": 60.0,
                                "client": "doomed"})
        time.sleep(0.5)                  # let it reach a worker
        outcome = client.cancel(doomed["job"])
        print(f"  cancelled {doomed['job']}: "
              f"worker reaped = {outcome['reaped_worker']}")

        # -- 7. the serve.* metric series ------------------------------
        print("\n[7] /metrics (serve_* series only)")
        for line in client.metrics().splitlines():
            if line.startswith("serve_"):
                print(f"  {line}")
        return 0
    finally:
        print("\nshutting down (SIGTERM -> graceful drain)")
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
        print(f"server exited {process.returncode}")


if __name__ == "__main__":
    sys.exit(main())
