#!/usr/bin/env python3
"""Section VIII demo: the ME-HPT techniques in a key-value store.

Builds the chunk-backed elastic KV store, grows it through a YCSB-style
load/read mix, and compares its resizing economics against Level Hashing
(Section IX): ME-HPT-style resizing moves ~1/2 of the entries with W
probes per lookup; Level Hashing moves ~1/3 but probes 4 locations on
*every* lookup.

Run:  python examples/kvstore_demo.py
"""

import time

from repro.applications import LevelHashTable, MemEfficientKVStore
from repro.common.units import format_bytes
from repro.mem import CostModelAllocator

N = 60_000


def main() -> None:
    # -- the store ----------------------------------------------------------
    allocator = CostModelAllocator(fmfi=0.7)
    store = MemEfficientKVStore(initial_slots=128, allocator=allocator)

    t0 = time.perf_counter()
    for i in range(N):
        store.put(f"user:{i}", {"id": i, "score": i % 100})
    load_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    hits = sum(1 for i in range(0, N, 3) if store.get(f"user:{i}") is not None)
    read_s = time.perf_counter() - t0

    print("=== MemEfficientKVStore (ME-HPT techniques) ===")
    print(f"  loaded {N:,} records in {load_s:.2f}s, "
          f"read {hits:,} in {read_s:.2f}s")
    print(f"  memory {format_bytes(store.total_bytes())} "
          f"(peak {format_bytes(store.peak_bytes())} — in-place resizing "
          f"keeps peak ~= final)")
    print(f"  largest contiguous allocation ever: "
          f"{format_bytes(allocator.stats.max_contiguous_bytes)}")
    print(f"  occupancy {store.occupancy():.2f}, "
          f"mean cuckoo re-insertions {store.mean_kicks():.2f}")
    print()

    # -- against Level Hashing ---------------------------------------------
    level = LevelHashTable(initial_top_buckets=64)
    for i in range(N):
        level.put(i, i)
    print("=== Level Hashing (Section IX comparison) ===")
    print(f"  entries {len(level):,}, resizes {level.resizes}, "
          f"load factor {level.load_factor():.2f}")
    print(f"  fraction of entries moved per resize: "
          f"{level.moved_fraction():.2f}  (ME-HPT in-place: ~0.50)")
    print(f"  probes per lookup: {level.probes_per_lookup}  "
          f"(ME-HPT: one per way, issued in parallel)")
    print()
    print("trade-off: Level Hashing saves ~17% of resize moves but pays an")
    print("extra probe on every lookup — the wrong trade for read-heavy")
    print("structures like page tables (Section IX).")


if __name__ == "__main__":
    main()
