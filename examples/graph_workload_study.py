#!/usr/bin/env python3
"""Graph-workload study: one application, three page-table organizations.

Runs a GraphBIG-style BFS workload (the paper's motivating domain)
through the full simulator with radix, ECPT and ME-HPT page tables —
with and without transparent huge pages — and reports the memory and
performance picture side by side (a single-app slice of Figures 8-10).

Run:  python examples/graph_workload_study.py [APP] [SCALE]
      e.g. python examples/graph_workload_study.py SSSP 64
"""

import sys

from repro.common.units import format_bytes
from repro.sim import SimulationConfig, TranslationSimulator
from repro.sim.results import speedup
from repro.sim.simulator import memory_result
from repro.workloads import get_workload, workload_names


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "BFS"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    if app not in workload_names():
        raise SystemExit(f"unknown app {app}; choose from {workload_names()}")

    workload = get_workload(app, scale=scale)
    print(workload.describe())
    print()

    # -- memory side -----------------------------------------------------
    print(f"{'organization':>14} {'contig':>10} {'total PT':>10} "
          f"{'peak PT':>10} {'alloc cycles':>14}")
    for org in ("radix", "ecpt", "mehpt"):
        config = SimulationConfig(organization=org, scale=scale)
        result = memory_result(config.build(get_workload(app, scale=scale)))
        print(f"{org:>14} {format_bytes(result.max_contiguous_bytes):>10} "
              f"{format_bytes(result.total_pt_bytes):>10} "
              f"{format_bytes(result.peak_pt_bytes):>10} "
              f"{result.pt_alloc_cycles:>14,.0f}")
    print()

    # -- performance side ---------------------------------------------------
    runs = {}
    for org in ("radix", "ecpt", "mehpt"):
        for thp in (False, True):
            config = SimulationConfig(organization=org, thp_enabled=thp, scale=scale)
            sim = TranslationSimulator(
                get_workload(app, scale=scale), config, trace_length=60_000
            )
            runs[(org, thp)] = sim.run()

    base = runs[("radix", False)]
    print(f"{'configuration':>16} {'speedup':>8} {'TLB miss/acc':>13} "
          f"{'walk cyc/acc':>13}")
    for (org, thp), result in runs.items():
        label = f"{org}{'+THP' if thp else ''}"
        print(f"{label:>16} {speedup(result, base):>8.2f} "
              f"{result.tlb_miss_rate():>13.3f} "
              f"{result.translation_cpa():>13.1f}")
    print()
    me, ec = runs[("mehpt", False)], runs[("ecpt", False)]
    print(f"ME-HPT over ECPT: {speedup(me, base) / speedup(ec, base):.3f}x "
          f"(driven by {ec.pt_alloc_cycles - me.pt_alloc_cycles:,.0f} fewer "
          f"allocation cycles and "
          f"{ec.rehash_move_cycles - me.rehash_move_cycles:,.0f} fewer "
          f"rehash-move cycles)")


if __name__ == "__main__":
    main()
