#!/usr/bin/env python3
"""Fragmentation study: why contiguous allocations fail on busy machines.

Reproduces the paper's Section III motivation end to end:

1. fragment a real buddy allocator to increasing FMFI levels,
2. measure the modelled cost of contiguous allocations at each level,
3. show the consequence: growing an ECPT beyond a 64MB way *crashes*
   above 0.7 FMFI, while ME-HPT (1MB chunks at most) sails through.

Run:  python examples/fragmentation_study.py
"""

from repro.common.errors import ContiguousAllocationError, OutOfMemoryError
from repro.common.units import GB, KB, MB, format_bytes
from repro.core import MeHptPageTables
from repro.ecpt import EcptPageTables
from repro.mem import (
    AllocationCostModel,
    BuddyAllocator,
    CostModelAllocator,
    Fragmenter,
    fmfi,
)


def buddy_demo() -> None:
    print("=== a real buddy allocator under fragmentation ===")
    for target in (0.0, 0.5, 0.9, 1.0):
        buddy = BuddyAllocator(2 * GB)
        order = buddy.order_for_bytes(64 * MB)
        achieved = Fragmenter(buddy).fragment_to(target, order)
        try:
            buddy.alloc_bytes(64 * MB)
            outcome = "64MB allocation OK"
        except OutOfMemoryError:
            outcome = "64MB allocation FAILED"
        print(f"  target FMFI {target:.2f} -> achieved {achieved:.2f}: {outcome}, "
              f"{buddy.free_frames() * 4 // 1024}MB free")
    print()


def cost_curve() -> None:
    print("=== allocation + zeroing cost (cycles) ===")
    model = AllocationCostModel()
    sizes = (4 * KB, 8 * KB, 1 * MB, 8 * MB, 64 * MB)
    print(f"  {'chunk':>8} {'FMFI 0.3':>14} {'FMFI 0.7 (paper)':>18}")
    for size in sizes:
        print(f"  {format_bytes(size):>8} {model.cycles(size, 0.3):>14,.0f} "
              f"{model.cycles(size, 0.7):>18,.0f}")
    print()


def crash_demo() -> None:
    print("=== growing page tables on a machine fragmented past 0.7 FMFI ===")
    # scale=16: footprints, initial ways and the chunk ladder all 16x
    # smaller; allocation accounting stays at full-scale equivalents (a
    # 4MB way charges and fails like a 64MB way).
    from repro.core.chunks import ChunkLadder

    scale = 16
    pages = 1_100_000 // scale
    ladder = ChunkLadder([max(64, s // scale) for s in (8 * KB, 1 * MB, 8 * MB)])

    ecpt = EcptPageTables(CostModelAllocator(fmfi=0.75, scale=scale), initial_slots=8)
    try:
        for i in range(pages):
            ecpt.map(0x100000 + i * 8, i)
        print("  ECPT: finished (unexpected!)")
    except ContiguousAllocationError as exc:
        print(f"  ECPT:   CRASHED — {exc}")

    mehpt = MeHptPageTables(
        CostModelAllocator(fmfi=0.75, scale=scale),
        initial_slots=8,
        chunk_ladder=ladder,
    )
    for i in range(pages):
        mehpt.map(0x100000 + i * 8, i)
    # The allocator already accounts at full-scale equivalents.
    print(f"  ME-HPT: finished; max contiguous allocation "
          f"{format_bytes(mehpt.max_contiguous_bytes())} "
          f"(full-scale equivalent), "
          f"tables hold {len(mehpt.tables['4K'].table):,} entries")


if __name__ == "__main__":
    buddy_demo()
    cost_curve()
    crash_demo()
