#!/usr/bin/env python3
"""Trace replay study: record, verify byte-identity, transform, compare.

The full `repro.traces` loop in one script:

1. record a GUPS access stream to a compact `.vpt` binary trace,
2. validate it (structure + per-chunk CRC32) and print its provenance,
3. replay it through the simulator and confirm the PerformanceResult is
   **byte-identical** to the live generator, for all three organizations,
4. derive a half-footprint variant with the lazy transform pipeline and
   compare how the organizations respond to the denser page reuse.

Run:  PYTHONPATH=src python examples/trace_replay_study.py
"""

import os
import tempfile

from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.traces import (
    TRACE_PREFIX,
    TraceReader,
    record_workload,
    transform_trace,
    validate_trace,
)
from repro.workloads import get_workload

APP, SCALE, SEED, LENGTH = "GUPS", 256, 7, 50_000
ORGS = ("radix", "ecpt", "mehpt")


def run(workload, org: str):
    config = SimulationConfig(organization=org, scale=SCALE, seed=SEED)
    return TranslationSimulator(workload, config, trace_length=LENGTH).run()


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="trace-study-")
    trace_path = os.path.join(workdir, "gups.vpt")

    # -- 1. record ----------------------------------------------------------
    live = get_workload(APP, scale=SCALE, seed=SEED)
    record_workload(live, LENGTH, trace_path)
    size = os.path.getsize(trace_path)
    print(f"recorded {LENGTH:,} references of {APP} -> {trace_path}")
    print(f"  {size:,} bytes on disk ({size / LENGTH:.2f} bytes/reference; "
          f"raw int64 would be 8.00)")

    # -- 2. validate + provenance ------------------------------------------
    report = validate_trace(trace_path)
    print(f"  validate: {report.summary()}")
    with TraceReader(trace_path) as reader:
        print(f"  recorded spec: {reader.meta.workload['name']} "
              f"(scale 1/{reader.meta.scale}, seed {reader.meta.seed}), "
              f"{reader.chunks} chunks")
    print()

    # -- 3. byte-identical replay ------------------------------------------
    replay = get_workload(TRACE_PREFIX + trace_path)
    print(f"{'organization':16}{'live cpa':>12}{'replay cpa':>12}{'identical':>12}")
    for org in ORGS:
        live_result = run(get_workload(APP, scale=SCALE, seed=SEED), org)
        replay_result = run(replay, org)
        print(f"{org:16}"
              f"{live_result.cycles_per_access():>12.3f}"
              f"{replay_result.cycles_per_access():>12.3f}"
              f"{str(replay_result == live_result):>12}")
    print()

    # -- 4. transform: half the footprint, same access order ---------------
    half_path = os.path.join(workdir, "gups-half.vpt")
    transform_trace([trace_path], half_path, rescale=(1, 2))
    half = get_workload(TRACE_PREFIX + half_path)
    print("half-footprint variant (rescale 1/2 — denser page reuse):")
    print(f"{'organization':16}{'full cpa':>12}{'half cpa':>12}")
    for org in ORGS:
        full_result = run(replay, org)
        half_result = run(half, org)
        print(f"{org:16}"
              f"{full_result.cycles_per_access():>12.3f}"
              f"{half_result.cycles_per_access():>12.3f}")
    print()
    print(f"traces kept in {workdir} — inspect with "
          f"`python -m repro.traces info {trace_path}`")


if __name__ == "__main__":
    main()
