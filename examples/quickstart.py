#!/usr/bin/env python3
"""Quickstart: build ME-HPT page tables, map memory, translate, resize.

This walks through the library's core objects in ~60 lines:

1. create per-process ME-HPT page tables (the paper's design),
2. map 4KB and 2MB pages and translate addresses,
3. watch the tables grow — in place, one way at a time, in small chunks —
   and compare the contiguous-memory bill against the ECPT baseline.

Run:  python examples/quickstart.py
"""

from repro.common.units import format_bytes
from repro.core import MeHptPageTables
from repro.ecpt import EcptPageTables
from repro.mem import CostModelAllocator


def main() -> None:
    # Allocators model a busy machine fragmented to 0.7 FMFI (the paper's
    # setting); every page-table allocation is charged real cycle costs.
    mehpt = MeHptPageTables(CostModelAllocator(fmfi=0.7))
    ecpt = EcptPageTables(CostModelAllocator(fmfi=0.7))

    # -- basic mapping ------------------------------------------------------
    mehpt.map(vpn=0x1000, ppn=0xCAFE, page_size="4K")
    mehpt.map(vpn=512 * 10, ppn=0xBEEF, page_size="2M")  # one huge page

    print("translate(0x1000)      ->", mehpt.translate(0x1000))
    print("translate(512*10 + 33) ->", mehpt.translate(512 * 10 + 33))
    print("translate(unmapped)    ->", mehpt.translate(0xDEAD))
    print()

    # -- growth under load ----------------------------------------------------
    # Map 200K scattered pages (one per 8-page cluster, the worst case for
    # table growth) into both organizations.
    print("mapping 200,000 scattered pages into ME-HPT and ECPT...")
    for i in range(200_000):
        mehpt.map(0x100000 + i * 8, i)
        ecpt.map(0x100000 + i * 8, i)

    print()
    print(f"{'':24}{'ME-HPT':>12}{'ECPT':>12}")
    print(f"{'page-table memory':24}"
          f"{format_bytes(mehpt.total_bytes()):>12}"
          f"{format_bytes(ecpt.total_bytes()):>12}")
    print(f"{'peak memory':24}"
          f"{format_bytes(mehpt.peak_total_bytes):>12}"
          f"{format_bytes(ecpt.peak_total_bytes):>12}")
    print(f"{'max contiguous alloc':24}"
          f"{format_bytes(mehpt.max_contiguous_bytes()):>12}"
          f"{format_bytes(ecpt.max_contiguous_bytes()):>12}")
    print(f"{'allocation cycles':24}"
          f"{mehpt.allocation_cycles():>12,.0f}"
          f"{ecpt.allocation_cycles():>12,.0f}")
    print()

    # -- the four techniques, visible --------------------------------------
    table = mehpt.tables["4K"].table
    print("4KB-page HPT state:")
    print("  way sizes (slots):   ", [way.size for way in table.ways])
    print("  upsizes per way:     ", [way.upsizes for way in table.ways],
          " (per-way resizing)")
    print("  in-place upsizes:    ", [way.inplace_upsizes for way in table.ways])
    print("  entries moved/upsize:",
          [f"{way.moved_fraction():.2f}" for way in table.ways],
          " (~0.50 expected: the one-extra-bit rule)")
    print("  chunk size per way:  ",
          [format_bytes(c) for c in mehpt.chunk_bytes_per_way("4K")],
          " (dynamically-changing chunks)")
    print("  L2P entries in use:  ", mehpt.l2p_entries_used(), "of",
          mehpt.l2p.total_entries())


if __name__ == "__main__":
    main()
