#!/usr/bin/env python3
"""Structural-trace study: data-structure-accurate workload generation.

The calibrated workloads in `repro.workloads.registry` model access
*statistics*; this example uses the structural generators instead — an
actual power-law CSR graph traversed by BFS/DFS/PageRank/TriangleCount
kernels, a real GUPS update loop, a MUMmer-style reference scan with
suffix-index descents — and pushes their traces through the TLB
hierarchy of each page-table organization.

The point: locality (and therefore TLB behaviour) *emerges* from the
data structures rather than being sampled, and the paper's ordering
(HPT walks beat radix walks hardest where locality is worst) still
holds.

Run:  python examples/structural_traces_study.py
"""

from repro.kernel.thp import ThpPolicy
from repro.kernel.address_space import AddressSpace
from repro.mmu.hierarchy import TlbHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads.graph import SyntheticGraph
from repro.workloads.kernels import GupsKernel, MummerKernel

TRACE_LEN = 40_000


def drive(name, trace, span, base_vpn):
    """Run one trace through radix and ME-HPT systems; print the row."""
    row = [name]
    for org in ("radix", "mehpt"):
        config = SimulationConfig(organization=org, scale=1,
                                  scale_cache_with_footprint=False)
        # Build the translation stack by hand (no registry workload).
        from repro.workloads.base import Workload, WorkloadSpec, AccessPattern
        cost_model = None
        caches = config.build_cache_hierarchy()
        if org == "radix":
            from repro.radix.table import RadixPageTable
            from repro.radix.walker import RadixWalker
            tables = RadixPageTable()
            walker = RadixWalker(tables, caches)
        else:
            from repro.core.mehpt import MeHptPageTables
            from repro.core.walker import MeHptWalker
            from repro.mem.allocator import CostModelAllocator
            tables = MeHptPageTables(CostModelAllocator(fmfi=0.3))
            walker = MeHptWalker(tables, caches)
        aspace = AddressSpace(tables, thp=ThpPolicy(enabled=False), fmfi=0.3,
                              charge_data_alloc=False)
        aspace.add_vma(base_vpn, span, name)
        tlb = TlbHierarchy(walker)
        cycles = 0.0
        for vpn in trace:
            vpn = int(vpn)
            outcome = tlb.translate(vpn)
            cycles += outcome.cycles
            if outcome.level == "fault":
                fault = aspace.handle_fault(vpn)
                tlb.fill(vpn, fault.page_size)
        row.append(f"{tlb.miss_rate():.3f}")
        row.append(f"{cycles / len(trace):.1f}")
    print(f"{row[0]:>14} {row[1]:>12} {row[2]:>12} {row[3]:>12} {row[4]:>12}")


def main() -> None:
    print(f"{'workload':>14} {'radix miss':>12} {'radix c/a':>12} "
          f"{'mehpt miss':>12} {'mehpt c/a':>12}")

    graph = SyntheticGraph(nodes=200_000, seed=11)
    span = graph.span_pages()
    for kernel in ("bfs_trace", "dfs_trace", "pagerank_trace", "triangle_trace"):
        trace = getattr(graph, kernel)(TRACE_LEN)
        drive(kernel.replace("_trace", "").upper(), trace, span, graph.base_vpn)

    gups = GupsKernel(table_pages=500_000)
    drive("GUPS", gups.trace(TRACE_LEN), 500_000, gups.base_vpn)

    mummer = MummerKernel(reference_pages=100_000, index_pages=60_000)
    drive("MUMmer", mummer.trace(TRACE_LEN), 160_000, mummer.reference_base)

    print("\nlocality emerges from the data structures: traversals that")
    print("revisit node/edge pages (TC, PR) miss far less than pure random")
    print("access (GUPS, miss ~1.0). Where walks go to DRAM, ME-HPT's flat")
    print("parallel probe beats the radix tree's sequential descent; where")
    print("page-table lines stay cached, the two are close — the paper's")
    print("crossover, visible per kernel.")


if __name__ == "__main__":
    main()
