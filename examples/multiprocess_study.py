#!/usr/bin/env python3
"""Multi-process study: context-switch costs of the L2P table (§V-C).

Schedules four processes (two graph apps, MUMmer, TC) round-robin under
each page-table organization and reports what the switches cost — in
particular the L2P save/restore that only ME-HPT pays, and how it
vanishes in a virtualized system.

Run:  python examples/multiprocess_study.py
"""

from repro.kernel.context import ContextSwitchModel
from repro.sim import SimulationConfig
from repro.sim.multiprocess import MultiProcessSimulator

APPS = ["BFS", "TC", "MUMmer", "SSSP"]
SCALE = 128


def run(org: str, virtualized: bool = False):
    config = SimulationConfig(organization=org, scale=SCALE)
    sim = MultiProcessSimulator(
        APPS,
        config,
        trace_length=20_000,
        quantum=2_000,
        switch_model=ContextSwitchModel(virtualized=virtualized),
    )
    return sim.run()


def main() -> None:
    print(f"4 processes ({', '.join(APPS)}), round-robin, 2K-access quantum\n")
    print(f"{'configuration':>22} {'switches':>9} {'switch cyc':>12} "
          f"{'L2P cyc':>10} {'L2P share':>10} {'avg L2P entries':>16}")
    for org in ("radix", "ecpt", "mehpt"):
        result = run(org)
        print(f"{org:>22} {result.switches:>9} {result.switch_cycles:>12,.0f} "
              f"{result.l2p_switch_cycles:>10,.0f} {result.l2p_overhead():>10.3%} "
              f"{result.mean_l2p_entries:>16.1f}")
    virt = run("mehpt", virtualized=True)
    print(f"{'mehpt (virtualized)':>22} {virt.switches:>9} "
          f"{virt.switch_cycles:>12,.0f} {virt.l2p_switch_cycles:>10,.0f} "
          f"{virt.l2p_overhead():>10.3%} {virt.mean_l2p_entries:>16.1f}")
    print("\nSection V-C: only the valid L2P entries move on a switch, so the")
    print("overhead tracks usage and stays a tiny share of runtime; under")
    print("virtualization the host L2P is not switched at all.")


if __name__ == "__main__":
    main()
