"""Benchmark: Table II — chunk-size ladder capacities (and Table III dump)."""

from benchmarks.conftest import once, save_output
from repro.common.units import GB, KB, MB, TB, PB
from repro.experiments import table2, table3


def test_bench_table2(benchmark):
    rows = once(benchmark, table2.run)
    save_output("table2", table2.format_result(rows))
    expected = {
        8 * KB: (512 * KB, 768 * MB, 384 * GB),
        1 * MB: (64 * MB, 96 * GB, 48 * TB),
        8 * MB: (512 * MB, 768 * GB, 384 * TB),
        64 * MB: (4 * GB, 6 * TB, 3 * PB),
    }
    for row in rows:
        way, map4k, map2m = expected[row.chunk_bytes]
        assert row.max_way_bytes == way
        assert row.map_4k_bytes == map4k
        assert row.map_2m_bytes == map2m
    assert table2.verify_smallest_row_live(rows[0])


def test_bench_table3(benchmark):
    params = once(benchmark, table3.run)
    save_output("table3", table3.format_result(params))
    assert all(table3.live_check().values())
