"""Benchmark: Figure 14 — L2P table entries used per application."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import fig14


def test_bench_fig14(benchmark):
    result = once(benchmark, lambda: fig14.run(BENCH_SETTINGS))
    save_output("fig14", fig14.format_result(result))

    # Usage never exceeds the 288-entry capacity.
    assert all(0 < used <= 288 for used in result.entries.values())
    # GUPS/SysBench are the heaviest users (paper: ~192 entries via 64
    # 1MB chunks per way x 3 ways); TC among the lightest (paper: 11).
    assert result.entries[("GUPS", False)] >= 180
    assert result.entries[("SysBench", False)] >= 180
    assert result.entries[("TC", False)] <= 20
    # MUMmer's cusp layout (two 8KB-chunk ways) makes it a heavy user too.
    assert result.entries[("MUMmer", False)] >= 120
    # The average stays modest — the context-switch cost argument.
    assert result.average() < 120
