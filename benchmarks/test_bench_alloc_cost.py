"""Benchmark: Section III allocation-cost measurements."""

import pytest

from benchmarks.conftest import once, save_output
from repro.common.units import KB, MB
from repro.experiments import alloc_cost


def test_bench_alloc_cost(benchmark):
    result = once(benchmark, lambda: alloc_cost.run(memory_gb=1))
    save_output("alloc_cost", alloc_cost.format_result(result))
    # The measured anchors are reproduced exactly at 0.7 FMFI.
    assert result.cycles[(4 * KB, 0.7)] == pytest.approx(4_000)
    assert result.cycles[(8 * KB, 0.7)] == pytest.approx(5_000)
    assert result.cycles[(1 * MB, 0.7)] == pytest.approx(750_000)
    assert result.cycles[(8 * MB, 0.7)] == pytest.approx(13_000_000)
    assert result.cycles[(64 * MB, 0.7)] == pytest.approx(120_000_000)
    # Above 0.7 FMFI the 64MB allocation fails (the paper's crash).
    assert result.cycles[(64 * MB, 0.75)] is None
    # End-to-end on a real buddy system.
    assert result.buddy_check[0.5] is True
    assert result.buddy_check[0.99] is False
