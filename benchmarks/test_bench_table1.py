"""Benchmark: Table I — memory consumption of the applications.

Paper geomeans (full scale): ECPT contiguous ~12.7GB... rather: ECPT
contiguous 12.7MB-equivalent column geomean 12697.6KB, tree total
23.5MB, ECPT total 56MB (no THP) / 18MB (THP).  The shape assertions
below check the headline relations; exact KB values are recorded in
EXPERIMENTS.md.
"""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import table1


def test_bench_table1(benchmark):
    rows = once(benchmark, lambda: table1.run(BENCH_SETTINGS))
    save_output("table1", table1.format_result(rows))
    by_app = {row.app: row for row in rows}

    # Radix always allocates one 4KB node at a time.
    assert all(row.tree_contig_kb == 4 for row in rows)
    # ECPT's contiguous need is the way size: 64MB for GUPS/SysBench,
    # 16MB for the big graph apps, 1-2MB for MUMmer/TC (Table I).
    assert by_app["GUPS"].ecpt_contig_kb == 64 * 1024
    assert by_app["SysBench"].ecpt_contig_kb == 64 * 1024
    assert by_app["BFS"].ecpt_contig_kb == 16 * 1024
    assert by_app["MUMmer"].ecpt_contig_kb == 1024
    assert by_app["TC"].ecpt_contig_kb == 2 * 1024
    # ECPT uses more total page-table memory than the radix tree...
    assert by_app["BFS"].ecpt_total_mb > by_app["BFS"].tree_total_mb
    # ...and THP collapses GUPS/SysBench page tables to under 2MB.
    assert by_app["GUPS"].ecpt_total_thp_mb < 2.0
    assert by_app["GUPS"].ecpt_total_mb > 200.0
