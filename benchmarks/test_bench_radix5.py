"""Ablation benchmark: 4-level vs 5-level radix walks.

The paper's scalability argument (Section II-A): Intel's LA57 adds a
fifth level to the radix tree, lengthening the sequential walk, while
HPT walk latency is level-free.  We measure the mean walk cycles of the
same sparse footprint under 4-level radix, 5-level radix, and ME-HPT.
"""

from benchmarks.conftest import once, save_output
from repro.core.mehpt import MeHptPageTables
from repro.core.walker import MeHptWalker
from repro.mem.allocator import CostModelAllocator
from repro.mem.cache import CacheHierarchy, CacheLevel
from repro.radix.pwc import PageWalkCaches
from repro.radix.table import RadixPageTable
from repro.radix.walker import RadixWalker
from repro.sim.results import format_table

#: Sparse, PWC-hostile footprint: pages scattered across PGD entries.
STRIDE = 1 << 28
PAGES = 3_000


def _tiny_caches():
    # Pressure-heavy cache model so upper levels miss, as at full scale.
    return CacheHierarchy(
        levels=[CacheLevel("L2", 16 * 1024, 8, 16), CacheLevel("L3", 64 * 1024, 16, 56)]
    )


def _measure():
    vpns = [(i * STRIDE + i * 7) % (1 << 40) for i in range(PAGES)]
    results = {}

    for levels in (4, 5):
        table = RadixPageTable(levels=levels)
        for vpn in vpns:
            table.map(vpn, vpn & 0xFFFF)
        walker = RadixWalker(table, _tiny_caches(), pwc=PageWalkCaches(levels=levels))
        for vpn in vpns:  # warm
            walker.walk(vpn)
        walker.total_cycles = walker.walks = 0
        for vpn in vpns:
            walker.walk(vpn)
        results[f"radix{levels}"] = walker.mean_walk_cycles()

    mehpt = MeHptPageTables(CostModelAllocator(fmfi=0.1))
    for vpn in vpns:
        mehpt.map(vpn, vpn & 0xFFFF)
    walker = MeHptWalker(mehpt, _tiny_caches())
    for vpn in vpns:
        walker.walk(vpn)
    walker.total_cycles = walker.walks = 0
    for vpn in vpns:
        walker.walk(vpn)
    results["mehpt"] = walker.mean_walk_cycles()
    return results


def test_bench_radix5_ablation(benchmark):
    results = once(benchmark, _measure)
    rows = [[name, f"{cycles:.0f}"] for name, cycles in results.items()]
    save_output(
        "radix5_ablation",
        format_table(["walker", "mean walk cycles"], rows,
                     title="Ablation: 5-level radix vs HPT walk latency"),
    )
    # Adding a level makes radix slower; HPT latency is level-free and
    # lowest on this PWC-hostile footprint.
    assert results["radix5"] > results["radix4"]
    assert results["mehpt"] < results["radix4"]
