"""Benchmark: Figure 9 — speedups over radix without THP.

Paper headlines: ME-HPT averages 1.23x (no THP) and 1.28x (THP) over
radix, 1.09x/1.06x over ECPT, and the THP configurations show large
gains for GUPS/SysBench (bars of 3.3-4.8x).
"""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import fig9


def test_bench_fig9(benchmark):
    result = once(benchmark, lambda: fig9.run(BENCH_SETTINGS))
    save_output("fig9", fig9.format_result(result))

    # HPTs beat radix on average; ME-HPT beats ECPT.
    assert result.average("mehpt", False) > 1.05
    assert result.average("mehpt", True) > result.average("radix", True)
    assert result.mehpt_over_ecpt(False) > 1.0
    # ME-HPT is the best configuration for the allocation-heavy apps.
    for app in ("GUPS", "SysBench"):
        assert result.speedups[app][("mehpt", False)] > result.speedups[app][
            ("ecpt", False)
        ]
        assert result.speedups[app][("mehpt", False)] > 1.1
    # THP yields multi-x speedups for the fully covered workloads.
    assert result.speedups["GUPS"][("radix", True)] > 2.0
    assert result.speedups["SysBench"][("radix", True)] > 1.5
    # ...and roughly nothing for the irregular graph apps.
    assert abs(result.speedups["BFS"][("radix", True)] - 1.0) < 0.05
