"""Microbenchmarks of the core structures (throughput, not paper figures).

These run under pytest-benchmark's normal timing loop and guard against
performance regressions in the hot paths: cuckoo insert/lookup, radix
and HPT walks, and TLB translation.
"""

import pytest

from repro.mem.cache import CacheHierarchy
from repro.mmu.hierarchy import TlbHierarchy
from repro.radix.table import RadixPageTable
from repro.radix.walker import RadixWalker
from repro.ecpt.tables import EcptPageTables
from repro.ecpt.walker import EcptWalker
from repro.mem.allocator import CostModelAllocator
from tests.conftest import make_chunked_table, make_contiguous_table

N = 5_000


@pytest.mark.parametrize("maker", [make_contiguous_table, make_chunked_table],
                         ids=["contiguous", "chunked"])
def test_bench_cuckoo_insert(benchmark, maker):
    def insert_n():
        table = maker(initial_slots=128)
        for key in range(N):
            table.insert(key, key)
        return table

    table = benchmark(insert_n)
    assert len(table) == N


@pytest.mark.parametrize("maker", [make_contiguous_table, make_chunked_table],
                         ids=["contiguous", "chunked"])
def test_bench_cuckoo_lookup(benchmark, maker):
    table = maker(initial_slots=128)
    for key in range(N):
        table.insert(key, key)

    def lookup_all():
        hits = 0
        for key in range(N):
            if table.lookup(key) is not None:
                hits += 1
        return hits

    assert benchmark(lookup_all) == N


def test_bench_radix_walk(benchmark):
    table = RadixPageTable()
    for vpn in range(N):
        table.map(vpn, vpn)
    walker = RadixWalker(table, CacheHierarchy())

    def walk_all():
        return sum(walker.walk(vpn).cycles for vpn in range(N))

    assert benchmark(walk_all) > 0


def test_bench_ecpt_walk(benchmark):
    tables = EcptPageTables(CostModelAllocator(fmfi=0.1))
    for vpn in range(N):
        tables.map(vpn, vpn)
    walker = EcptWalker(tables, CacheHierarchy())

    def walk_all():
        return sum(walker.walk(vpn).cycles for vpn in range(N))

    assert benchmark(walk_all) > 0


def test_bench_tlb_translate(benchmark):
    tables = EcptPageTables(CostModelAllocator(fmfi=0.1))
    for vpn in range(N):
        tables.map(vpn, vpn)
    tlb = TlbHierarchy(EcptWalker(tables, CacheHierarchy()))

    def translate_all():
        return sum(tlb.translate(vpn).cycles for vpn in range(N))

    assert benchmark(translate_all) >= 0
