"""Benchmark: Figure 8 — maximum contiguous allocation, ECPT vs ME-HPT."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.common.units import KB, MB
from repro.experiments import fig8


def test_bench_fig8(benchmark):
    result = once(benchmark, lambda: fig8.run(BENCH_SETTINGS))
    save_output("fig8", fig8.format_result(result))
    by_app = {row.app: row for row in result.rows}

    # Headline: GUPS and SysBench drop from 64MB to 1MB.
    for app in ("GUPS", "SysBench"):
        assert by_app[app].ecpt_bytes == 64 * MB
        assert by_app[app].mehpt_bytes == 1 * MB
    # ME-HPT never allocates beyond one chunk (1MB here, 8KB under THP
    # for the fully huge-page-backed apps).
    assert all(row.mehpt_bytes <= 1 * MB for row in result.rows)
    assert by_app["GUPS"].mehpt_thp_bytes == 8 * KB
    # Average reduction is large (paper: 92% / 84%).
    assert result.mean_reduction > 0.6
    assert result.mean_reduction_thp > 0.6
