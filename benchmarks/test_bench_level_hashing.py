"""Ablation benchmark: ME-HPT in-place resizing vs Level Hashing (§IX).

The paper's comparison: Level Hashing moves only ~1/3 of the old
entries per resize but needs 4 memory probes per lookup; ME-HPT's
in-place scheme moves ~1/2 with one probe per way (3 probes issued in
parallel = one memory latency).  For read-dominated structures like page
tables, ME-HPT's trade wins.
"""

import pytest

from benchmarks.conftest import once, save_output
from repro.applications.level_hashing import LevelHashTable
from repro.sim.results import format_table
from tests.conftest import make_chunked_table

N = 40_000


def _measure():
    level = LevelHashTable(initial_top_buckets=64)
    for key in range(N):
        level.put(key, key)

    mehpt = make_chunked_table(initial_slots=128)
    for key in range(N):
        mehpt.insert(key, key)
    mehpt.drain()
    moved = sum(w.rehash_relocated for w in mehpt.ways)
    examined = sum(w.rehash_examined for w in mehpt.ways)
    return {
        "level_moved_fraction": level.moved_fraction(),
        "level_probes": level.probes_per_lookup,
        "level_resizes": level.resizes,
        "mehpt_moved_fraction": moved / examined,
        "mehpt_probes": mehpt.num_ways,  # parallel: one memory latency
        "mehpt_upsizes": sum(w.upsizes for w in mehpt.ways),
    }


def test_bench_level_hashing_ablation(benchmark):
    stats = once(benchmark, _measure)
    rows = [
        ["entries moved per resize",
         f"{stats['level_moved_fraction']:.2f}",
         f"{stats['mehpt_moved_fraction']:.2f}"],
        ["probe locations per lookup",
         str(stats["level_probes"]),
         f"{stats['mehpt_probes']} (parallel)"],
        ["resize events",
         str(stats["level_resizes"]),
         str(stats["mehpt_upsizes"])],
    ]
    save_output(
        "level_hashing_ablation",
        format_table(["metric", "Level Hashing", "ME-HPT engine"], rows,
                     title="Section IX: in-place resizing comparison"),
    )
    # The paper's quoted trade-off, measured:
    assert stats["level_moved_fraction"] == pytest.approx(1 / 3, abs=0.12)
    assert stats["mehpt_moved_fraction"] == pytest.approx(0.5, abs=0.06)
    assert stats["level_probes"] == 4
    assert stats["mehpt_probes"] == 3
