"""Benchmark: Figure 16 — cuckoo re-insertions per insertion or rehash."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import fig16


def test_bench_fig16(benchmark):
    result = once(benchmark, lambda: fig16.run(BENCH_SETTINGS))
    save_output("fig16", fig16.format_result(result))

    # The distribution is a proper distribution...
    assert abs(sum(result.distribution) - 1.0) < 1e-9
    # ...dominated by the no-conflict case (paper: P(0) ~ 0.64) with a
    # geometric-looking tail and a small mean (paper: ~0.7).
    assert result.p_zero > 0.5
    assert result.mean < 1.5
    assert all(
        result.distribution[k] >= result.distribution[k + 2]
        for k in range(1, 8)
    )
