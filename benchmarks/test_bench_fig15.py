"""Benchmark: Figure 15 — small graphs under fixed vs dynamic chunks."""

from benchmarks.conftest import once, save_output
from repro.common.units import KB, MB
from repro.experiments import fig15
from repro.experiments.runner import ExperimentSettings


def test_bench_fig15(benchmark):
    result = once(benchmark, lambda: fig15.run(ExperimentSettings(scale=1)))
    save_output("fig15", fig15.format_result(result))

    fixed = {n: result.mean_way_bytes[("ME-HPT 1MB", n)] for n in (1000, 10000, 100000)}
    mixed = {
        n: result.mean_way_bytes[("ME-HPT 1MB+8KB", n)] for n in (1000, 10000, 100000)
    }
    # Fixed 1MB chunks waste a full chunk per way on small inputs...
    assert fixed[1000] >= 1 * MB
    assert fixed[10000] >= 1 * MB
    # ...while the dynamic ladder allocates only what is needed
    # (paper: ~16KB at 1K nodes, ~128KB at 10K nodes).
    assert mixed[1000] < 64 * KB
    assert mixed[10000] < 256 * KB
    # At 100K nodes the footprint justifies 1MB chunks and the designs tie.
    assert 0.5 <= mixed[100000] / fixed[100000] <= 1.0
