"""Benchmark: Figure 13 — fraction of entries moved per in-place upsize."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import fig13


def test_bench_fig13(benchmark):
    result = once(benchmark, lambda: fig13.run(BENCH_SETTINGS))
    save_output("fig13", fig13.format_result(result))

    # The one-extra-bit rule keeps ~half the entries in place; the
    # measured average sits near 0.5 (the paper's Figure 13).
    assert 0.45 < result.average(False) < 0.55
    assert 0.45 < result.average(True) < 0.55
    # Every app with upsizes is individually close to 0.5.
    for app in result.apps:
        fraction = result.fraction[(app, False)]
        if fraction > 0:
            assert 0.4 < fraction < 0.6
    # GUPS/SysBench with THP have no 4KB upsizes, hence no samples.
    assert result.fraction[("GUPS", True)] == 0.0
    assert result.fraction[("SysBench", True)] == 0.0
