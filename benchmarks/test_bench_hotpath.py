"""Hot-path microbenchmark: scalar vs vectorized engine on recorded traces.

Replays the same ``.vpt`` traces through both simulation engines, checks
the results are bit-identical, and records accesses/sec for each in
``benchmarks/output/BENCH_hotpath.json`` (mirrored to the repo root as
``BENCH_hotpath.json``) so the speedup is tracked over time.

Two scenarios:

* **GUPS trace replay** — the fast path's headline case: TLB-hit heavy,
  the binary chunk reads feed the batched probes directly.  Gated at
  20x since PR 7 batch-walks the miss path too.
* **fragmentation-storm replay** (``repro.fuzz`` stressor) — a
  miss-heavy adversarial trace (>90% of accesses walk).  Walk *planning*
  is inherently sequential (CWC lookups and cuckoo probes mutate tiny
  caches access-by-access), so the win here comes from batched line
  resolution and cache probing only; the gate asserts the batched walk
  path itself pays off, not just the hit path.

Environment knobs let CI run a cheaper configuration:

* ``HOTPATH_EVENTS`` — GUPS trace length (default 1000000).
* ``HOTPATH_MIN_SPEEDUP`` — required vectorized/scalar throughput ratio
  on GUPS (default 20.0, the paper-repro target; the CI perf-smoke job
  relaxes it to 1.0 on a small trace, asserting only the direction).
* ``HOTPATH_MISS_EVENTS`` — fragmentation-storm trace length (default
  200000).
* ``HOTPATH_MISS_MIN_SPEEDUP`` — required ratio on the miss-heavy trace
  (default 1.5; CI relaxes it to 1.0, direction-only).
* ``HOTPATH_DC_EVENTS`` — per-tenant trace length of the datacenter
  quantum scenario (default 160000).
* ``HOTPATH_DC_MIN_SPEEDUP`` — required ratio on the multi-tenant
  quantum scenario (default 5.0; CI relaxes it to 1.0, direction-only).

The third scenario, **datacenter quantum** — six GUPS tenants
round-robin on a 2-socket machine — exercises the per-tenant
:class:`~repro.sim.quantum.QuantumEngine`: suspendable vectorized TLB
state across context switches plus NUMA-aware batched DRAM-home
resolution, gated at 5x.
"""

import json
import os
import shutil
import time

import pytest

from benchmarks.conftest import once
from repro.fuzz.scenario import Scenario, StressorSpec
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.traces.record import record_workload
from repro.traces.workload import TraceWorkload
from repro.workloads import get_workload

SCALE = 64
SEED = 17
TRACE_EVENTS = int(os.environ.get("HOTPATH_EVENTS", "1000000"))
MIN_SPEEDUP = float(os.environ.get("HOTPATH_MIN_SPEEDUP", "20.0"))
MISS_EVENTS = int(os.environ.get("HOTPATH_MISS_EVENTS", "200000"))
MISS_MIN_SPEEDUP = float(os.environ.get("HOTPATH_MISS_MIN_SPEEDUP", "1.5"))
DC_EVENTS = int(os.environ.get("HOTPATH_DC_EVENTS", "160000"))
DC_MIN_SPEEDUP = float(os.environ.get("HOTPATH_DC_MIN_SPEEDUP", "5.0"))
DC_QUANTUM = 8000
DC_TENANTS = 6
DC_SOCKETS = 2

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """Record a GUPS trace to a ``.vpt`` file once for the module."""
    path = str(tmp_path_factory.mktemp("hotpath") / "gups.vpt")
    workload = get_workload("GUPS", scale=SCALE, seed=SEED)
    record_workload(workload, TRACE_EVENTS, path)
    return path


@pytest.fixture(scope="module")
def miss_heavy(tmp_path_factory):
    """A miss-heavy fragmentation-storm trace plus its scenario.

    The ``fragmentation_storm`` stressor sweeps a fresh footprint block
    after block, so nearly every access is a full TLB miss and a large
    share demand-fault; FMFI 0.5 keeps the run clean (no abort) at any
    length.
    """
    scenario = Scenario(
        name="frag-storm-bench", seed=SEED, trace_length=MISS_EVENTS,
        stressors=(
            StressorSpec.make("fragmentation_storm", blocks=2048, fmfi=0.5),
        ),
        overrides=(("fmfi", 0.5),),
    )
    path = str(tmp_path_factory.mktemp("hotpath-miss") / "frag.vpt")
    scenario.generate_trace(path)
    return scenario, path


def _save(section, payload):
    """Merge one benchmark section into the JSON, mirror to repo root."""
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    out = os.path.join(_OUTPUT_DIR, "BENCH_hotpath.json")
    merged = {}
    if os.path.exists(out):
        try:
            with open(out) as handle:
                merged = json.load(handle)
        except (json.JSONDecodeError, OSError):
            merged = {}
    if not isinstance(merged, dict) or "scalar_accesses_per_sec" in merged:
        merged = {}  # pre-PR-7 flat layout: start fresh
    merged[section] = payload
    with open(out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    shutil.copyfile(out, os.path.join(_REPO_ROOT, "BENCH_hotpath.json"))
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")
    return out


def _replay(trace_path, engine):
    # THP keeps the demand-fault count to a few hundred 2MB regions, so
    # the measured time is translation throughput, not fault handling.
    config = SimulationConfig(
        organization="mehpt", thp_enabled=True, scale=SCALE, engine=engine,
    )
    sim = TranslationSimulator(
        TraceWorkload(trace_path), config, trace_length=TRACE_EVENTS,
    )
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    assert not result.failed
    return result, elapsed


def test_bench_hotpath_speedup(benchmark, trace_path):
    scalar_result, scalar_s = _replay(trace_path, "scalar")
    vector_result, vector_s = once(
        benchmark, lambda: _replay(trace_path, "vectorized")
    )
    assert scalar_result == vector_result  # speed must not change answers

    scalar_rate = TRACE_EVENTS / scalar_s
    vector_rate = TRACE_EVENTS / vector_s
    speedup = vector_rate / scalar_rate
    _save("gups_replay", {
        "workload": "GUPS trace replay",
        "organization": "mehpt",
        "thp": True,
        "trace_events": TRACE_EVENTS,
        "scalar_accesses_per_sec": round(scalar_rate),
        "vectorized_accesses_per_sec": round(vector_rate),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    })

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.2f}x scalar "
        f"({vector_rate:,.0f} vs {scalar_rate:,.0f} accesses/sec)"
    )


def _replay_miss_heavy(scenario, trace_path, engine):
    config = scenario.config_for("mehpt", trace_path)
    config.engine = engine
    sim = TranslationSimulator(
        config.load_trace_workload(), config, trace_length=MISS_EVENTS,
    )
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    assert not result.failed
    return result, elapsed


def test_bench_hotpath_miss_heavy(benchmark, miss_heavy):
    scenario, path = miss_heavy
    scalar_result, scalar_s = _replay_miss_heavy(scenario, path, "scalar")
    vector_result, vector_s = once(
        benchmark, lambda: _replay_miss_heavy(scenario, path, "vectorized")
    )
    assert scalar_result == vector_result
    assert scalar_result.walks > 0.9 * MISS_EVENTS  # stays miss-heavy

    scalar_rate = MISS_EVENTS / scalar_s
    vector_rate = MISS_EVENTS / vector_s
    speedup = vector_rate / scalar_rate
    _save("miss_heavy_frag_storm", {
        "workload": "fragmentation-storm trace replay (repro.fuzz)",
        "organization": "mehpt",
        "thp": False,
        "trace_events": MISS_EVENTS,
        "walks": scalar_result.walks,
        "faults": scalar_result.faults,
        "scalar_accesses_per_sec": round(scalar_rate),
        "vectorized_accesses_per_sec": round(vector_rate),
        "speedup": round(speedup, 2),
        "min_speedup": MISS_MIN_SPEEDUP,
    })

    assert speedup >= MISS_MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.2f}x scalar on the miss-heavy "
        f"trace ({vector_rate:,.0f} vs {scalar_rate:,.0f} accesses/sec)"
    )


def _run_datacenter(engine):
    from repro.sim.datacenter import DatacenterParams, DatacenterSimulator

    config = SimulationConfig(
        organization="mehpt", thp_enabled=True, scale=SCALE, seed=SEED,
        engine=engine,
    )
    params = DatacenterParams(
        sockets=DC_SOCKETS, processes=DC_TENANTS, policy="none",
        quantum=DC_QUANTUM, pool_mb=64,
    )
    sim = DatacenterSimulator(
        ["GUPS"], config, params=params, trace_length=DC_EVENTS,
    )
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    assert not result.failed, result.failure_reason
    return result, elapsed


def test_bench_datacenter_quantum(benchmark):
    scalar_result, scalar_s = _run_datacenter("scalar")
    vector_result, vector_s = once(
        benchmark, lambda: _run_datacenter("vectorized")
    )
    assert scalar_result.to_dict() == vector_result.to_dict()

    accesses = scalar_result.accesses
    scalar_rate = accesses / scalar_s
    vector_rate = accesses / vector_s
    speedup = vector_rate / scalar_rate
    _save("datacenter_quantum", {
        "workload": "multi-tenant GUPS quanta (datacenter machine model)",
        "organization": "mehpt",
        "thp": True,
        "sockets": DC_SOCKETS,
        "tenants": DC_TENANTS,
        "quantum": DC_QUANTUM,
        "trace_events_per_tenant": DC_EVENTS,
        "accesses": accesses,
        "scalar_accesses_per_sec": round(scalar_rate),
        "vectorized_accesses_per_sec": round(vector_rate),
        "speedup": round(speedup, 2),
        "min_speedup": DC_MIN_SPEEDUP,
    })

    assert speedup >= DC_MIN_SPEEDUP, (
        f"vectorized quantum engine only {speedup:.2f}x scalar "
        f"({vector_rate:,.0f} vs {scalar_rate:,.0f} accesses/sec)"
    )
