"""Hot-path microbenchmark: scalar vs vectorized engine on a recorded trace.

Replays the same ``.vpt`` trace through both simulation engines, checks
the results are bit-identical, and records accesses/sec for each in
``benchmarks/output/BENCH_hotpath.json`` so the speedup is tracked over
time.  The trace-replay scenario is the fast path's headline case: the
binary chunk reads feed the batched probes directly, with no generator
work in the loop.

Two environment knobs let CI run a cheaper configuration:

* ``HOTPATH_EVENTS`` — trace length (default 1000000).
* ``HOTPATH_MIN_SPEEDUP`` — required vectorized/scalar throughput ratio
  (default 5.0, the paper-repro target; the CI perf-smoke job relaxes
  it to 1.0 on a small trace, asserting only that vectorized wins).
"""

import json
import os
import time

import pytest

from benchmarks.conftest import once
from repro.sim.config import SimulationConfig
from repro.sim.simulator import TranslationSimulator
from repro.traces.record import record_workload
from repro.traces.workload import TraceWorkload
from repro.workloads import get_workload

SCALE = 64
SEED = 17
TRACE_EVENTS = int(os.environ.get("HOTPATH_EVENTS", "1000000"))
MIN_SPEEDUP = float(os.environ.get("HOTPATH_MIN_SPEEDUP", "5.0"))

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """Record a GUPS trace to a ``.vpt`` file once for the module."""
    path = str(tmp_path_factory.mktemp("hotpath") / "gups.vpt")
    workload = get_workload("GUPS", scale=SCALE, seed=SEED)
    record_workload(workload, TRACE_EVENTS, path)
    return path


def _replay(trace_path, engine):
    # THP keeps the demand-fault count to a few hundred 2MB regions, so
    # the measured time is translation throughput, not fault handling.
    config = SimulationConfig(
        organization="mehpt", thp_enabled=True, scale=SCALE, engine=engine,
    )
    sim = TranslationSimulator(
        TraceWorkload(trace_path), config, trace_length=TRACE_EVENTS,
    )
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    assert not result.failed
    return result, elapsed


def test_bench_hotpath_speedup(benchmark, trace_path):
    scalar_result, scalar_s = _replay(trace_path, "scalar")
    vector_result, vector_s = once(
        benchmark, lambda: _replay(trace_path, "vectorized")
    )
    assert scalar_result == vector_result  # speed must not change answers

    scalar_rate = TRACE_EVENTS / scalar_s
    vector_rate = TRACE_EVENTS / vector_s
    speedup = vector_rate / scalar_rate
    payload = {
        "workload": "GUPS trace replay",
        "organization": "mehpt",
        "thp": True,
        "trace_events": TRACE_EVENTS,
        "scalar_accesses_per_sec": round(scalar_rate),
        "vectorized_accesses_per_sec": round(vector_rate),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    out = os.path.join(_OUTPUT_DIR, "BENCH_hotpath.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {out}]")

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.2f}x scalar "
        f"({vector_rate:,.0f} vs {scalar_rate:,.0f} accesses/sec)"
    )
