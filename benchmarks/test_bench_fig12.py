"""Benchmark: Figure 12 — final size of each ME-HPT way (4KB pages)."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.common.units import KB, MB
from repro.experiments import fig12


def test_bench_fig12(benchmark):
    result = once(benchmark, lambda: fig12.run(BENCH_SETTINGS))
    save_output("fig12", fig12.format_result(result))

    # GUPS/SysBench build the largest ways: 64MB full-scale equivalent.
    assert max(result.way_bytes[("GUPS", False)]) == 64 * MB
    assert max(result.way_bytes[("SysBench", False)]) == 64 * MB
    # With THP their 4KB tables keep the initial (smallest) size.
    assert max(result.way_bytes[("GUPS", True)]) <= 64 * KB
    assert max(result.way_bytes[("SysBench", True)]) <= 64 * KB
    # MUMmer sits at the per-way cusp: ways of ~0.5MB with one 1MB way
    # (Section VII-D), i.e. unequal sizes — per-way resizing at work.
    mummer = result.way_bytes[("MUMmer", False)]
    assert min(mummer) == 512 * KB
    assert max(mummer) == 1 * MB
    assert "MUMmer" in result.differing_ways(False)
