"""Benchmark: Figure 11 — upsizing operations per way (4KB ME-HPT)."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import fig11


def test_bench_fig11(benchmark):
    result = once(benchmark, lambda: fig11.run(BENCH_SETTINGS))
    save_output("fig11", fig11.format_result(result))

    # GUPS and SysBench have the most upsizes (paper: 13 per way at full
    # scale; at 1/64 footprint with the scaled 128/64=2->4-slot initial
    # ways the doubling count shifts by a constant, so we assert order).
    gups = result.upsizes[("GUPS", False)]
    tc = result.upsizes[("TC", False)]
    assert min(gups) > max(tc)
    # The balancer keeps per-way counts within one of each other.
    for app in result.apps:
        counts = result.upsizes[(app, False)]
        assert max(counts) - min(counts) <= 1
    # GUPS/SysBench with THP never upsize their 4KB tables.
    assert result.upsizes[("GUPS", True)] == [0, 0, 0]
    assert result.upsizes[("SysBench", True)] == [0, 0, 0]
    # Graph apps are THP-insensitive.
    assert result.upsizes[("BFS", True)] == result.upsizes[("BFS", False)]
