"""Benchmark: Figure 10 — page-table memory reduction, split by technique."""

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.experiments import fig10


def test_bench_fig10(benchmark):
    result = once(benchmark, lambda: fig10.run(BENCH_SETTINGS))
    save_output("fig10", fig10.format_result(result))

    # ME-HPT saves page-table memory on average (paper: 43% / 41%).
    assert result.mean_reduction(False) > 0.2
    assert result.mean_reduction(True) > 0.2
    # Every application saves or breaks even; the heavy hitters save a lot.
    by_key = {(r.app, r.thp): r for r in result.rows}
    assert by_key[("GUPS", False)].reduction_pct > 0.25
    assert by_key[("SysBench", False)].reduction_pct > 0.25
    # In-place resizing is the dominant contributor (paper: 75-80%).
    assert result.mean_contribution("inplace", False) > result.mean_contribution(
        "perway", False
    )
