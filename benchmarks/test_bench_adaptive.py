"""Ablation benchmark: fixed chunk ladder vs the §V-B adaptive policy.

The paper leaves fragmentation/growth-aware chunk sizing as future work;
this reproduction implements it.  We compare page-table allocation
cycles and maximum contiguous request of the fixed ladder against the
adaptive policy on a lightly and a heavily fragmented machine.
"""

from benchmarks.conftest import once, save_output
from repro.common.units import MB, format_bytes
from repro.core.adaptive import AdaptiveChunkPolicy
from repro.core.mehpt import MeHptPageTables
from repro.mem.allocator import CostModelAllocator
from repro.sim.results import format_table

BLOCKS = 60_000


def _grow(fmfi: float, adaptive: bool):
    policy = AdaptiveChunkPolicy(fmfi=fmfi, growth_lookahead=3) if adaptive else None
    tables = MeHptPageTables(
        CostModelAllocator(fmfi=fmfi), adaptive_policy=policy
    )
    for i in range(BLOCKS):
        tables.map(0x1000 + i * 8, i)
    return {
        "alloc_cycles": tables.allocation_cycles(),
        "max_contig": tables.max_contiguous_bytes(),
        "transitions": tables.total_chunk_transitions(),
    }


def _measure():
    return {
        (fmfi, adaptive): _grow(fmfi, adaptive)
        for fmfi in (0.2, 0.75)
        for adaptive in (False, True)
    }


def test_bench_adaptive_chunks(benchmark):
    results = once(benchmark, _measure)
    rows = []
    for (fmfi, adaptive), stats in results.items():
        rows.append([
            f"FMFI {fmfi}",
            "adaptive" if adaptive else "fixed ladder",
            f"{stats['alloc_cycles']:,.0f}",
            format_bytes(stats["max_contig"]),
            str(stats["transitions"]),
        ])
    save_output(
        "adaptive_chunks_ablation",
        format_table(
            ["fragmentation", "policy", "PT alloc cycles", "max contig", "transitions"],
            rows,
            title="Section V-B future work: adaptive chunk sizing",
        ),
    )
    # On the fragmented machine both policies stay safe (no failing sizes).
    assert results[(0.75, True)]["max_contig"] < 64 * MB
    # On the lightly fragmented machine the adaptive policy must not cost
    # more than the fixed ladder (it may jump straight to bigger chunks).
    assert (
        results[(0.2, True)]["alloc_cycles"]
        <= results[(0.2, False)]["alloc_cycles"] * 1.3
    )
    # Both complete with correct tables (same mapping count path as tests).
