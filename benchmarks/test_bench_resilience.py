"""Benchmark: fragmentation resilience — survival under rising FMFI.

The robustness headline: ECPT's 64MB contiguous ways abort above 0.7
FMFI (recorded, never an unhandled crash) while ME-HPT's chunked ways
complete every point with verified invariants, under an armed
transient-fault plan whose recoveries are cycle-charged.
"""

import pytest

from benchmarks.conftest import BENCH_SETTINGS, once, save_output
from repro.common.units import MB
from repro.experiments import resilience

pytestmark = pytest.mark.faults

#: Reduced point set for the smoke run: below, at, and above the paper's
#: 0.7 FMFI failure threshold.
FMFI_POINTS = (0.0, 0.5, 0.7, 0.75, 0.9)


def test_bench_resilience(benchmark):
    result = once(
        benchmark,
        lambda: resilience.run(BENCH_SETTINGS, fmfi_points=FMFI_POINTS),
    )
    save_output("resilience", resilience.format_result(result))
    ecpt = {row.fmfi: row for row in result.rows if row.organization == "ecpt"}
    mehpt = {row.fmfi: row for row in result.rows if row.organization == "mehpt"}

    # ECPT completes up to the paper's 0.7 FMFI threshold and aborts
    # beyond it — recorded as a failed row, not an exception.
    for fmfi in (0.0, 0.5, 0.7):
        assert ecpt[fmfi].completed
        assert ecpt[fmfi].max_contiguous_bytes == 64 * MB
    for fmfi in (0.75, 0.9):
        assert not ecpt[fmfi].completed
        assert ecpt[fmfi].failure_reason
    assert result.ecpt_crash_fmfi == 0.75

    # ME-HPT completes every point with small allocations and verified
    # invariants, degrading gracefully through the injected faults.
    assert result.mehpt_survived_all
    for row in mehpt.values():
        assert row.completed and not row.invariant_violation
        assert row.max_contiguous_bytes <= 1 * MB
        assert row.degradation_events() > 0
        assert row.recovery_cycles > 0
