"""Shared settings and helpers for the benchmark harness.

Every paper table/figure has one benchmark module that (a) regenerates
the table/figure rows through the same drivers as
``python -m repro.experiments.<name>``, (b) asserts the paper-shaped
properties hold, and (c) writes the formatted output to
``benchmarks/output/<name>.txt`` so the artifacts survive pytest's
output capture.

The benchmark settings trade a little fidelity for runtime (footprints
at 1/64 scale, 25K-event traces); the experiment drivers' defaults are
the higher-fidelity configuration.  Sweep results are memoised inside
one pytest process, so benchmarks that need the same populate runs
(Table I, Figures 8 and 10-14) share the work.

The sweep engine is configurable from the pytest command line —
``pytest benchmarks/ --jobs 4 --cache-dir .repro-cache`` fans the sweep
grids out over 4 worker processes and persists results on disk so a
second benchmark session starts warm; ``--no-cache`` bypasses the disk.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import engine as engine_mod
from repro.experiments.runner import ExperimentSettings, clear_caches

#: One settings object shared by all benchmarks (shared memoisation).
BENCH_SETTINGS = ExperimentSettings(scale=64, trace_length=25_000)

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def save_output(name: str, text: str) -> None:
    """Persist a formatted table under benchmarks/output/ and echo it."""
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    path = os.path.join(_OUTPUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def once(benchmark, fn):
    """Run an expensive driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def pytest_addoption(parser):
    group = parser.getgroup("repro sweep engine")
    group.addoption(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep grids (1 = inline)",
    )
    group.addoption(
        "--cache-dir", default=None,
        help="persistent sweep-result cache directory (default: off)",
    )
    group.addoption(
        "--no-cache", action="store_true",
        help="neither read nor write the sweep disk cache",
    )


@pytest.fixture(scope="session", autouse=True)
def _configure_sweep_engine(request):
    """Point the default engine at the session's --jobs/--cache-dir flags."""
    previous = engine_mod.get_engine()
    no_cache = request.config.getoption("--no-cache")
    cache_dir = request.config.getoption("--cache-dir")
    engine_mod.configure(
        jobs=request.config.getoption("--jobs"),
        cache_dir=None if no_cache else cache_dir,
        use_cache=not no_cache,
    )
    yield
    engine_mod.set_engine(previous)


@pytest.fixture(scope="session", autouse=True)
def _drop_sweep_caches():
    """Release the memoised sweep results when the benchmark session ends.

    Within the session the caches are the point (shared populate runs);
    afterwards they only pin memory in whatever process embeds pytest.
    """
    yield
    clear_caches()
