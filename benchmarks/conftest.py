"""Shared settings and helpers for the benchmark harness.

Every paper table/figure has one benchmark module that (a) regenerates
the table/figure rows through the same drivers as
``python -m repro.experiments.<name>``, (b) asserts the paper-shaped
properties hold, and (c) writes the formatted output to
``benchmarks/output/<name>.txt`` so the artifacts survive pytest's
output capture.

The benchmark settings trade a little fidelity for runtime (footprints
at 1/64 scale, 25K-event traces); the experiment drivers' defaults are
the higher-fidelity configuration.  Sweep results are memoised inside
one pytest process, so benchmarks that need the same populate runs
(Table I, Figures 8 and 10-14) share the work.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentSettings, clear_caches

#: One settings object shared by all benchmarks (shared memoisation).
BENCH_SETTINGS = ExperimentSettings(scale=64, trace_length=25_000)

_OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def save_output(name: str, text: str) -> None:
    """Persist a formatted table under benchmarks/output/ and echo it."""
    os.makedirs(_OUTPUT_DIR, exist_ok=True)
    path = os.path.join(_OUTPUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def once(benchmark, fn):
    """Run an expensive driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _drop_sweep_caches():
    """Release the memoised sweep results when the benchmark session ends.

    Within the session the caches are the point (shared populate runs);
    afterwards they only pin memory in whatever process embeds pytest.
    """
    yield
    clear_caches()
